//! Attribute values and domains.
//!
//! The relational model of the paper associates every attribute with a
//! domain. We support the domains that occur in legacy administrative
//! databases (the paper's motivating setting): integers, reals, strings,
//! booleans and dates, plus SQL `NULL`.
//!
//! # NULL semantics
//!
//! The algorithms of the paper compute `‖r[X]‖` as SQL
//! `SELECT COUNT(DISTINCT X) FROM R`, and equi-joins with SQL equality.
//! We therefore follow SQL semantics throughout:
//!
//! * `NULL` never compares equal to anything, including itself, for the
//!   purpose of joins and distinct counting ([`Value::sql_eq`]);
//! * tuples containing a `NULL` in the projected attributes are skipped
//!   by `COUNT(DISTINCT …)` (implemented in
//!   [`crate::counting`]);
//! * for *sorting and grouping inside the engine* we still need a total
//!   order, so [`Value`] implements `Ord`/`Hash` with `Null` smallest and
//!   distinct from every non-null value. Engine code must filter nulls
//!   out explicitly wherever SQL semantics demand it.

use std::cmp::Ordering;
use std::fmt;

/// A totally ordered wrapper around `f64`.
///
/// `NaN` is ordered greater than every other value and equal to itself so
/// that [`Value`] can implement `Eq`/`Ord`/`Hash`. Legacy data rarely
/// contains NaN, but the engine must not panic when it does.
#[derive(Debug, Clone, Copy)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Returns the wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    #[inline]
    fn key(self) -> u64 {
        // Total order bit trick: flip sign bit for positives, flip all
        // bits for negatives. Maps -inf..+inf (and NaN payloads) onto an
        // order-preserving unsigned key.
        let bits = self.0.to_bits();
        if bits >> 63 == 0 {
            bits | (1 << 63)
        } else {
            !bits
        }
    }
}

impl PartialEq for OrdF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}
impl std::hash::Hash for OrdF64 {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A calendar date stored as days since 1970-01-01 (proleptic Gregorian).
///
/// Legacy schemas in the paper use dates as key components
/// (`HEmployee(no, date, salary)`), so the type only needs ordering,
/// equality and parsing/formatting of `YYYY-MM-DD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// Builds a date from a civil year/month/day triple.
    ///
    /// Returns `None` when the triple is not a valid Gregorian date.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Option<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date(days_from_civil(year, month, day)))
    }

    /// Decomposes into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// Parses `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut it = s.splitn(3, '-');
        let y: i32 = it.next()?.parse().ok()?;
        let m: u32 = it.next()?.parse().ok()?;
        let d: u32 = it.next()?.parse().ok()?;
        Date::from_ymd(y, m, d)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

// Howard Hinnant's civil-days algorithms.
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = y - i32::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i32 - 719_468
}

fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u32;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (y + i32::from(m <= 2), m, d)
}

/// The domain (type) of an attribute, as declared in the data dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Domain {
    /// 64-bit signed integer (`INTEGER`, `SMALLINT`, …).
    Int,
    /// Double precision float (`REAL`, `NUMERIC`, `DECIMAL`).
    Float,
    /// Variable length character data (`CHAR`, `VARCHAR`, `TEXT`).
    #[default]
    Text,
    /// Boolean.
    Bool,
    /// Calendar date.
    Date,
}

impl Domain {
    /// Human readable SQL-ish name.
    pub fn sql_name(self) -> &'static str {
        match self {
            Domain::Int => "INTEGER",
            Domain::Float => "REAL",
            Domain::Text => "VARCHAR",
            Domain::Bool => "BOOLEAN",
            Domain::Date => "DATE",
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single attribute value.
///
/// `Ord`/`Eq`/`Hash` provide an engine-internal total order (see the
/// module docs); SQL three-valued equality is [`Value::sql_eq`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// SQL NULL — unknown/missing.
    #[default]
    Null,
    /// Integer value.
    Int(i64),
    /// Floating point value with total order.
    Float(OrdF64),
    /// String value.
    Str(Box<str>),
    /// Boolean value.
    Bool(bool),
    /// Date value.
    Date(Date),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<Box<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for floats.
    pub fn float(f: f64) -> Self {
        Value::Float(OrdF64(f))
    }

    /// Is this SQL `NULL`?
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL equality: `NULL = x` is unknown, which we surface as `false`
    /// (the only consumer is join/filter logic where unknown rows drop).
    #[inline]
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self == other
    }

    /// The domain this value naturally belongs to, or `None` for NULL
    /// (NULL inhabits every domain).
    pub fn domain(&self) -> Option<Domain> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(Domain::Int),
            Value::Float(_) => Some(Domain::Float),
            Value::Str(_) => Some(Domain::Text),
            Value::Bool(_) => Some(Domain::Bool),
            Value::Date(_) => Some(Domain::Date),
        }
    }

    /// Does this value fit in `domain`? NULL fits everywhere.
    pub fn fits(&self, domain: Domain) -> bool {
        match self.domain() {
            None => true,
            Some(d) => d == domain,
        }
    }

    /// Coerces literal text into `domain` (used by the SQL layer and the
    /// data generator). Returns `None` when the text does not parse.
    pub fn parse_into(text: &str, domain: Domain) -> Option<Value> {
        if text.eq_ignore_ascii_case("null") {
            return Some(Value::Null);
        }
        Some(match domain {
            Domain::Int => Value::Int(text.parse().ok()?),
            Domain::Float => Value::float(text.parse().ok()?),
            Domain::Text => Value::str(text),
            Domain::Bool => match text.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Value::Bool(true),
                "false" | "f" | "0" => Value::Bool(false),
                _ => return None,
            },
            Domain::Date => Value::Date(Date::parse(text)?),
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Date(d) => write!(f, "DATE '{d}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into_boxed_str())
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_not_sql_equal_to_itself() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
        assert!(!Value::Int(1).sql_eq(&Value::Null));
    }

    #[test]
    fn non_null_sql_eq_matches_structural_eq() {
        assert!(Value::Int(3).sql_eq(&Value::Int(3)));
        assert!(!Value::Int(3).sql_eq(&Value::Int(4)));
        assert!(Value::str("a").sql_eq(&Value::str("a")));
        assert!(!Value::str("a").sql_eq(&Value::Int(3)));
    }

    #[test]
    fn engine_order_puts_null_first() {
        let mut vals = [Value::Int(5), Value::Null, Value::Int(-2)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-2));
    }

    #[test]
    fn ordf64_total_order() {
        let mut xs = [
            OrdF64(f64::NAN),
            OrdF64(1.0),
            OrdF64(-1.0),
            OrdF64(f64::NEG_INFINITY),
            OrdF64(0.0),
            OrdF64(f64::INFINITY),
        ];
        xs.sort();
        assert_eq!(xs[0].0, f64::NEG_INFINITY);
        assert_eq!(xs[1].0, -1.0);
        assert_eq!(xs[2].0, 0.0);
        assert_eq!(xs[3].0, 1.0);
        assert_eq!(xs[4].0, f64::INFINITY);
        assert!(xs[5].0.is_nan());
        // NaN equals itself under the total order.
        assert_eq!(OrdF64(f64::NAN), OrdF64(f64::NAN));
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (1996, 2, 29), (2026, 7, 7), (1899, 12, 31)] {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.ymd(), (y, m, d));
            let s = date.to_string();
            assert_eq!(Date::parse(&s), Some(date));
        }
    }

    #[test]
    fn date_rejects_invalid() {
        assert!(Date::from_ymd(1995, 2, 29).is_none());
        assert!(Date::from_ymd(1995, 13, 1).is_none());
        assert!(Date::from_ymd(1995, 0, 1).is_none());
        assert!(Date::from_ymd(1995, 4, 31).is_none());
        assert!(Date::parse("not-a-date").is_none());
    }

    #[test]
    fn date_epoch_is_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().0, 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).unwrap().0, 1);
        assert_eq!(Date::from_ymd(1969, 12, 31).unwrap().0, -1);
    }

    #[test]
    fn parse_into_all_domains() {
        assert_eq!(Value::parse_into("42", Domain::Int), Some(Value::Int(42)));
        assert_eq!(
            Value::parse_into("4.5", Domain::Float),
            Some(Value::float(4.5))
        );
        assert_eq!(
            Value::parse_into("abc", Domain::Text),
            Some(Value::str("abc"))
        );
        assert_eq!(
            Value::parse_into("true", Domain::Bool),
            Some(Value::Bool(true))
        );
        assert_eq!(
            Value::parse_into("1996-02-29", Domain::Date),
            Some(Value::Date(Date::from_ymd(1996, 2, 29).unwrap()))
        );
        assert_eq!(Value::parse_into("NULL", Domain::Int), Some(Value::Null));
        assert_eq!(Value::parse_into("x", Domain::Int), None);
    }

    #[test]
    fn fits_checks_domain() {
        assert!(Value::Int(1).fits(Domain::Int));
        assert!(!Value::Int(1).fits(Domain::Text));
        assert!(Value::Null.fits(Domain::Int));
        assert!(Value::Null.fits(Domain::Date));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("x").to_string(), "'x'");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
    }
}
