//! The persistent spill cache: streamed-ingest tables on disk,
//! reusable across runs.
//!
//! Streaming ingest (`import_csv_spilled` in [`crate::csv`]) encodes
//! a CSV extension straight into [`crate::pages`] spill files without
//! materializing a `Table`. Those files are validated and checksummed
//! already — this module makes them *durable*: with a `--spill-dir`,
//! each ingested table lands in a directory keyed by the **schema
//! fingerprint + source-content hash**, together with a compact
//! serialization of each column's slim dictionary and a `manifest`
//! written last (its presence is the commit point — a crashed ingest
//! leaves no manifest and the entry reads as a miss). A warm rerun
//! re-hashes the source, finds the entry, re-validates every page
//! file's checksum and adopts the columns without an encode pass.
//!
//! Any mismatch — foreign layout, truncated pages, corrupt
//! dictionary, row-count disagreement — degrades to a cache miss
//! through the typed [`PageError`] path, and the re-encode simply
//! overwrites the entry.

use crate::bufpool::BufferPool;
use crate::database::Database;
use crate::encode::ColumnDict;
use crate::error::DbreError;
use crate::pages::{fnv1a64_bytes, lhs_groups_paged, FNV_BYTES_SEED};
use crate::pages::{PageError, PageFile, PagedColumn};
use crate::schema::{RelId, Relation};
use crate::value::{Date, OrdF64, Value};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Spill-cache format version — part of the cache key, so a layout
/// change silently invalidates old entries instead of misreading them.
/// Version 2 added the optional per-column sketch-hash section.
const FORMAT_VERSION: &str = "dbre-spill 2";

/// Dictionary-file magic (format name + version).
const DICT_MAGIC: &[u8; 8] = b"DBREDC02";

/// Counters describing how streamed ingest used the persistent spill
/// cache: one hit per table whose encode pass was skipped entirely,
/// one miss per table that had to encode (cold cache, or no
/// `--spill-dir` at all).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillCacheStats {
    /// Tables adopted from the cache (encode skipped).
    pub hits: u64,
    /// Tables that encoded from source.
    pub misses: u64,
}

/// One streamed-ingest table: every column spilled to pages with its
/// slim dictionary resident, and no in-memory `Value` columns at all.
/// The matching `Table` in the [`Database`] is a *streamed extension*
/// — it knows its row count but holds no data (see
/// `Table::is_materialized`).
#[derive(Debug)]
pub struct SpilledTable {
    columns: Vec<Arc<PagedColumn>>,
    rows: usize,
    from_cache: bool,
}

impl SpilledTable {
    /// Bundles spilled columns into a table. All columns must encode
    /// `rows` rows.
    pub fn new(columns: Vec<Arc<PagedColumn>>, rows: usize, from_cache: bool) -> SpilledTable {
        debug_assert!(columns.iter().all(|c| c.rows() == rows));
        SpilledTable {
            columns,
            rows,
            from_cache,
        }
    }

    /// The spilled columns, in attribute order.
    pub fn columns(&self) -> &[Arc<PagedColumn>] {
        &self.columns
    }

    /// Rows the table holds.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Did this table come from the persistent cache (encode skipped)?
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }
}

/// Streams `path` through the FNV-1a byte hash — the content half of
/// the cache key. One sequential read, no allocation beyond a chunk
/// buffer.
pub fn hash_file(path: &Path) -> Result<u64, PageError> {
    let mut f = std::fs::File::open(path).map_err(|e| PageError::Io(e.to_string()))?;
    let mut hash = FNV_BYTES_SEED;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf).map_err(|e| PageError::Io(e.to_string()))?;
        if n == 0 {
            return Ok(hash);
        }
        hash = fnv1a64_bytes(hash, &buf[..n]);
    }
}

/// The cache key for one (relation schema, source content) pair:
/// 32 hex chars — schema fingerprint then content hash. Renaming an
/// attribute, changing a domain or touching one byte of the source
/// each move the key, so stale entries are never *found*, only left
/// behind.
pub fn cache_key(relation: &Relation, content_hash: u64) -> String {
    let mut h = fnv1a64_bytes(FNV_BYTES_SEED, FORMAT_VERSION.as_bytes());
    h = fnv1a64_bytes(h, &[0]);
    h = fnv1a64_bytes(h, relation.name.as_bytes());
    for a in relation.attributes() {
        h = fnv1a64_bytes(h, &[0]);
        h = fnv1a64_bytes(h, a.name.as_bytes());
        h = fnv1a64_bytes(h, &[0]);
        h = fnv1a64_bytes(h, a.domain.sql_name().as_bytes());
    }
    format!("{h:016x}{content_hash:016x}")
}

/// The directory one cache entry lives in.
pub fn entry_dir(spill_dir: &Path, key: &str) -> PathBuf {
    spill_dir.join(key)
}

pub(crate) fn pages_path(dir: &Path, col: usize) -> PathBuf {
    dir.join(format!("col{col}.pages"))
}

/// Invalidates an entry before re-encoding over it: with the manifest
/// gone, a crash mid-encode can never leave a readable mix of old and
/// new column files.
pub(crate) fn invalidate_entry(dir: &Path) {
    let _ = std::fs::remove_file(manifest_path(dir));
}

fn dict_path(dir: &Path, col: usize) -> PathBuf {
    dir.join(format!("col{col}.dict"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest")
}

/// Serializes a slim dictionary: magic, decode table (tagged values),
/// NULL count, per-code occurrence counts, an optional sketch-hash
/// section (one 64-bit [`crate::sketch::value_hash`] per distinct
/// value, present iff the ingest pass built a sketch), and an FNV-1a
/// trailer over everything after the magic. All integers
/// little-endian.
fn encode_dict(dict: &ColumnDict) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(DICT_MAGIC);
    let body_start = out.len();
    let values = dict.distinct_values();
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        match v {
            // NULL never enters a decode table (code 0 is implicit),
            // but the tag keeps the format total.
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.0.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u64).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(4);
                out.push(u8::from(*b));
            }
            Value::Date(d) => {
                out.push(5);
                out.extend_from_slice(&d.0.to_le_bytes());
            }
        }
    }
    out.extend_from_slice(&(dict.null_count() as u64).to_le_bytes());
    let counts = dict.code_counts();
    out.extend_from_slice(&(counts.len() as u64).to_le_bytes());
    for &c in counts {
        out.extend_from_slice(&c.to_le_bytes());
    }
    // Sketch section: persist the distinct-value hashes the ingest
    // pass computed, so a warm load preseeds the sketch instead of
    // rehashing every value. Flag byte keeps sketch-off entries valid.
    match dict.sketch_if_built() {
        Some(sketch) => {
            out.push(1);
            out.extend_from_slice(&(sketch.hashes().len() as u64).to_le_bytes());
            for &h in sketch.hashes() {
                out.extend_from_slice(&h.to_le_bytes());
            }
        }
        None => out.push(0),
    }
    let trailer = fnv1a64_bytes(FNV_BYTES_SEED, &out[body_start..]);
    out.extend_from_slice(&trailer.to_le_bytes());
    out
}

/// A tiny cursor over the dictionary bytes; every read is
/// bounds-checked and any short read decodes as `None` (a corrupt
/// dictionary is a cache miss, never a panic).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(self.u64()? as i64)
    }

    fn i32(&mut self) -> Option<i32> {
        let b = self.take(4)?;
        Some(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Deserializes [`encode_dict`] output; `None` on any corruption
/// (bad magic, bad trailer hash, short reads, foreign value tags).
fn decode_dict(bytes: &[u8]) -> Option<ColumnDict> {
    let body = bytes.strip_prefix(DICT_MAGIC)?;
    if body.len() < 8 {
        return None;
    }
    let (body, trailer) = body.split_at(body.len() - 8);
    let expected = u64::from_le_bytes([
        trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
        trailer[7],
    ]);
    if fnv1a64_bytes(FNV_BYTES_SEED, body) != expected {
        return None;
    }
    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    let n_values = usize::try_from(c.u64()?).ok()?;
    // A value costs at least 1 byte on disk; reject absurd counts
    // before allocating.
    if n_values > body.len() {
        return None;
    }
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        let v = match c.u8()? {
            0 => Value::Null,
            1 => Value::Int(c.i64()?),
            2 => Value::Float(OrdF64(f64::from_bits(c.u64()?))),
            3 => {
                let len = usize::try_from(c.u64()?).ok()?;
                let s = std::str::from_utf8(c.take(len)?).ok()?;
                Value::str(s)
            }
            4 => Value::Bool(c.u8()? != 0),
            5 => Value::Date(Date(c.i32()?)),
            _ => return None,
        };
        values.push(v);
    }
    let nulls = usize::try_from(c.u64()?).ok()?;
    let n_counts = usize::try_from(c.u64()?).ok()?;
    if n_counts != n_values + 1 {
        return None;
    }
    let mut counts = Vec::with_capacity(n_counts);
    for _ in 0..n_counts {
        counts.push(c.u64()?);
    }
    let hashes = match c.u8()? {
        0 => None,
        1 => {
            let n_hashes = usize::try_from(c.u64()?).ok()?;
            // One hash per distinct value, nothing else is well-formed.
            if n_hashes != n_values {
                return None;
            }
            let mut hashes = Vec::with_capacity(n_hashes);
            for _ in 0..n_hashes {
                hashes.push(c.u64()?);
            }
            Some(hashes)
        }
        _ => return None,
    };
    if c.pos != body.len() || counts[0] != nulls as u64 {
        return None;
    }
    Some(match hashes {
        Some(hashes) => ColumnDict::from_parts_with_sketch(values, nulls, counts, hashes),
        None => ColumnDict::from_parts(values, nulls, counts),
    })
}

/// Writes one column's dictionary file. With the sketch prefilter
/// enabled ([`crate::sketch::SketchMode::from_env`]), the column's
/// sketch is built here — O(cardinality), riding the ingest pass —
/// and its hashes persist with the dictionary, so warm loads never
/// rehash.
pub(crate) fn write_dict(dir: &Path, col: usize, dict: &ColumnDict) -> Result<(), PageError> {
    if crate::sketch::SketchMode::from_env().is_on() {
        let _ = dict.sketch();
    }
    std::fs::write(dict_path(dir, col), encode_dict(dict)).map_err(|e| PageError::Io(e.to_string()))
}

/// Commits a cache entry by writing its manifest — the last file
/// written, so a partial entry (crash mid-ingest) never validates.
pub(crate) fn write_manifest(dir: &Path, rows: usize, arity: usize) -> Result<(), PageError> {
    std::fs::write(
        manifest_path(dir),
        format!("{FORMAT_VERSION}\nrows {rows}\narity {arity}\n"),
    )
    .map_err(|e| PageError::Io(e.to_string()))
}

/// Attempts to load a cache entry for a table of `arity` columns.
/// Every page file is checksum-verified in full (one sequential read
/// — still far cheaper than re-parsing and re-encoding the source)
/// and every dictionary must decode and agree with its page file's
/// row count. Any failure is a miss (`None`); the caller re-encodes
/// over the entry.
pub fn load_entry(dir: &Path, arity: usize) -> Option<SpilledTable> {
    let manifest = std::fs::read_to_string(manifest_path(dir)).ok()?;
    let mut lines = manifest.lines();
    if lines.next()? != FORMAT_VERSION {
        return None;
    }
    let rows: usize = lines.next()?.strip_prefix("rows ")?.parse().ok()?;
    let m_arity: usize = lines.next()?.strip_prefix("arity ")?.parse().ok()?;
    if m_arity != arity {
        return None;
    }
    let mut columns = Vec::with_capacity(arity);
    for i in 0..arity {
        let file = PageFile::open(&pages_path(dir, i)).ok()?;
        if file.rows() as usize != rows {
            return None;
        }
        file.verify_checksum().ok()?;
        let dict = decode_dict(&std::fs::read(dict_path(dir, i)).ok()?)?;
        if dict.code_counts().len() != dict.cardinality() + 1
            || dict.code_counts().iter().sum::<u64>() != rows as u64
        {
            return None;
        }
        columns.push(Arc::new(PagedColumn::new(Arc::new(dict), file)));
    }
    Some(SpilledTable::new(columns, rows, true))
}

/// Validation twin of [`Database::validate_dictionary`] for streamed
/// extensions, whose rows never exist as in-memory `Value` columns:
/// not-null constraints read the resident dictionaries' NULL counts,
/// key constraints hold iff no non-NULL key projection repeats —
/// exactly "`lhs_groups` over the key attributes is empty", which the
/// paged kernel answers from dictionary counts (unary) or one
/// streamed scan (composite).
pub fn validate_spilled(
    db: &Database,
    rel: RelId,
    table: &SpilledTable,
    pool: &BufferPool,
) -> Result<(), DbreError> {
    let relation = db.schema.relation(rel);
    for &(nn_rel, attr) in &db.constraints.not_null {
        if nn_rel != rel {
            continue;
        }
        let col = table
            .columns()
            .get(attr.index())
            .ok_or_else(|| PageError::Io(format!("not-null attr {} out of range", attr.0)))?;
        if col.dict().null_count() > 0 {
            return Err(crate::error::RelationalError::NotNullViolation {
                relation: relation.name.clone(),
                attribute: relation.attr_name(attr).to_string(),
            }
            .into());
        }
    }
    for key in &db.constraints.keys {
        if key.rel != rel {
            continue;
        }
        let cols: Vec<&PagedColumn> = key
            .attrs
            .iter()
            .map(|a| {
                table
                    .columns()
                    .get(a.index())
                    .map(Arc::as_ref)
                    .ok_or_else(|| PageError::Io(format!("key attr {} out of range", a.0)))
            })
            .collect::<Result<_, _>>()?;
        let groups = lhs_groups_paged(&cols, table.rows(), pool)?;
        if !groups.is_empty() {
            return Err(crate::error::RelationalError::KeyViolation {
                relation: relation.name.clone(),
                key: relation.render_set(&key.attrs),
            }
            .into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Domain;

    fn dict_of(values: &[Value]) -> ColumnDict {
        ColumnDict::build(values)
    }

    #[test]
    fn dict_round_trips_every_domain() {
        let col = vec![
            Value::Int(42),
            Value::Null,
            Value::float(f64::NAN),
            Value::str("héllo, \"quoted\""),
            Value::Bool(true),
            Value::Date(Date::from_ymd(1996, 2, 26).unwrap()),
            Value::Int(42),
            Value::float(-0.0),
        ];
        let dict = dict_of(&col);
        let bytes = encode_dict(&dict);
        let back = decode_dict(&bytes).expect("round trip");
        assert_eq!(back.distinct_values(), dict.distinct_values());
        assert_eq!(back.null_count(), dict.null_count());
        assert_eq!(back.code_counts(), dict.code_counts());
        // Codes must agree too: same decode table, same index.
        for v in dict.distinct_values() {
            assert_eq!(back.code_of(v), dict.code_of(v));
        }
    }

    #[test]
    fn dict_sketch_persists_and_preseeds() {
        let dict = dict_of(&[
            Value::Int(1),
            Value::Null,
            Value::Int(2),
            Value::str("x"),
            Value::Int(1),
        ]);
        // No sketch built: flag 0, decode yields a sketchless dict.
        let plain = decode_dict(&encode_dict(&dict)).expect("round trip");
        assert!(plain.sketch_if_built().is_none());
        // Force the sketch and re-encode: the load path must preseed
        // an identical sketch without rebuilding.
        let sketch = dict.sketch().expect("sketchable");
        let seeded = decode_dict(&encode_dict(&dict)).expect("round trip");
        let preseeded = seeded.sketch_if_built().expect("sketch persisted");
        assert_eq!(preseeded.as_ref(), sketch.as_ref());
        assert_eq!(preseeded.distinct_exact(), dict.cardinality());
        assert_eq!(preseeded.rows(), 5);
        assert_eq!(preseeded.null_count(), 1);
    }

    #[test]
    fn dict_rejects_corruption() {
        let dict = dict_of(&[Value::Int(1), Value::Int(2), Value::Null]);
        let good = encode_dict(&dict);
        assert!(decode_dict(&good).is_some());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(decode_dict(&bad).is_none());
        // Flipped body byte: trailer hash catches it.
        let mut bad = good.clone();
        bad[10] ^= 0x01;
        assert!(decode_dict(&bad).is_none());
        // Truncated.
        assert!(decode_dict(&good[..good.len() - 3]).is_none());
        // Empty / tiny.
        assert!(decode_dict(&[]).is_none());
        assert!(decode_dict(DICT_MAGIC).is_none());
    }

    /// Writes a full cache entry for `cols` the way streaming ingest
    /// does: pages via the streaming writer, dictionaries, manifest
    /// last.
    fn write_entry(dir: &Path, cols: &[Vec<Value>], rows: usize) {
        std::fs::create_dir_all(dir).unwrap();
        for (i, col) in cols.iter().enumerate() {
            let dict = ColumnDict::build(col);
            let mut w = crate::pages::PageFileWriter::create_at(&pages_path(dir, i)).unwrap();
            w.append(dict.codes()).unwrap();
            // Durable files survive the handle; drop the read handle.
            drop(w.finish().unwrap());
            write_dict(dir, i, &dict.slim()).unwrap();
        }
        write_manifest(dir, rows, cols.len()).unwrap();
    }

    #[test]
    fn entry_round_trips_and_rejects_damage() {
        let base = std::env::temp_dir().join(format!("dbre-spill-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let rel = Relation::of("T", &[("a", Domain::Int), ("b", Domain::Text)]);
        let a: Vec<Value> = (0..2500)
            .map(|i| {
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 300)
                }
            })
            .collect();
        let b: Vec<Value> = (0..2500)
            .map(|i| Value::str(format!("v{}", i % 12)))
            .collect();
        let dir = entry_dir(&base, &cache_key(&rel, 1234));
        write_entry(&dir, &[a.clone(), b.clone()], 2500);

        let loaded = load_entry(&dir, 2).expect("fresh entry must load");
        assert!(loaded.from_cache());
        assert_eq!(loaded.rows(), 2500);
        assert_eq!(loaded.arity(), 2);
        // Adopted columns answer like direct encodes.
        let pool = BufferPool::default();
        let direct = ColumnDict::build(&a);
        let col0 = &loaded.columns()[0];
        assert_eq!(col0.dict().distinct_values(), direct.distinct_values());
        assert_eq!(col0.dict().null_count(), direct.null_count());
        let mut codes = Vec::new();
        for p in 0..col0.file().pages() {
            codes.extend_from_slice(&col0.page(&pool, p).unwrap());
        }
        assert_eq!(codes, direct.codes());

        // Wrong arity: miss.
        assert!(load_entry(&dir, 3).is_none());
        // Missing manifest (crash mid-ingest): miss.
        let manifest = manifest_path(&dir);
        let saved = std::fs::read(&manifest).unwrap();
        std::fs::remove_file(&manifest).unwrap();
        assert!(load_entry(&dir, 2).is_none());
        std::fs::write(&manifest, &saved).unwrap();
        // Corrupt a code byte (not the tail padding, which is trimmed
        // on read and rightly outside the checksum): miss.
        let pp = pages_path(&dir, 1);
        let mut bytes = std::fs::read(&pp).unwrap();
        let flip = crate::pages::HEADER_BYTES + 8;
        bytes[flip] ^= 0xff;
        std::fs::write(&pp, &bytes).unwrap();
        assert!(load_entry(&dir, 2).is_none());
        bytes[flip] ^= 0xff;
        std::fs::write(&pp, &bytes).unwrap();
        assert!(load_entry(&dir, 2).is_some(), "repair must re-validate");
        // Corrupt a dictionary: miss.
        let dp = dict_path(&dir, 0);
        let mut dbytes = std::fs::read(&dp).unwrap();
        dbytes[12] ^= 0x10;
        std::fs::write(&dp, &dbytes).unwrap();
        assert!(load_entry(&dir, 2).is_none());

        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn validate_spilled_checks_keys_and_not_null() {
        use crate::attr::{AttrId, AttrSet};
        use crate::deps::Key;

        let base = std::env::temp_dir().join(format!("dbre-spill-val-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of(
                "K",
                &[("id", Domain::Int), ("v", Domain::Int)],
            ))
            .unwrap();
        db.constraints.keys.push(Key {
            rel,
            attrs: AttrSet::from_indices([0u16]),
        });
        db.constraints.not_null.push((rel, AttrId(0)));

        let ids: Vec<Value> = (0..100).map(Value::Int).collect();
        let vs: Vec<Value> = (0..100).map(|i| Value::Int(i % 5)).collect();
        let dir = base.join("good");
        write_entry(&dir, &[ids, vs.clone()], 100);
        let good = load_entry(&dir, 2).unwrap();
        let pool = BufferPool::default();
        validate_spilled(&db, rel, &good, &pool).expect("unique non-null key must pass");

        // Duplicate id 3: key violation.
        let mut dup_ids: Vec<Value> = (0..100).map(Value::Int).collect();
        dup_ids[50] = Value::Int(3);
        let dir2 = base.join("dup");
        write_entry(&dir2, &[dup_ids, vs.clone()], 100);
        let dup = load_entry(&dir2, 2).unwrap();
        assert!(matches!(
            validate_spilled(&db, rel, &dup, &pool),
            Err(DbreError::Relational(
                crate::error::RelationalError::KeyViolation { .. }
            ))
        ));

        // NULL id: not-null violation (reported before the key check).
        let mut null_ids: Vec<Value> = (0..100).map(Value::Int).collect();
        null_ids[7] = Value::Null;
        let dir3 = base.join("null");
        write_entry(&dir3, &[null_ids, vs], 100);
        let nulls = load_entry(&dir3, 2).unwrap();
        assert!(matches!(
            validate_spilled(&db, rel, &nulls, &pool),
            Err(DbreError::Relational(
                crate::error::RelationalError::NotNullViolation { .. }
            ))
        ));

        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn cache_key_separates_schema_and_content() {
        let r1 = Relation::of("T", &[("a", Domain::Int), ("b", Domain::Text)]);
        let r2 = Relation::of("T", &[("a", Domain::Int), ("b", Domain::Int)]);
        let r3 = Relation::of("U", &[("a", Domain::Int), ("b", Domain::Text)]);
        let k = cache_key(&r1, 7);
        assert_eq!(k.len(), 32);
        assert_ne!(k, cache_key(&r2, 7), "domain change must move the key");
        assert_ne!(k, cache_key(&r3, 7), "rename must move the key");
        assert_ne!(k, cache_key(&r1, 8), "content change must move the key");
        assert_eq!(k, cache_key(&r1, 7), "key must be deterministic");
    }
}
