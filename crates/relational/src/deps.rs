//! Dependencies: `Δ = F ∪ IND`, keys `K` and not-null constraints `N`.
//!
//! Matches the paper's Section 2 definitions:
//!
//! * a functional dependency `R_i : Y → Z` holds in `r_i` iff any two
//!   tuples agreeing on `Y` agree on `Z`;
//! * an inclusion dependency `R_i[Y] ≪ R_j[Z]` holds iff
//!   `r_i[Y] ⊆ r_j[Z]` — the sides are *ordered lists* because the
//!   correspondence is positional;
//! * a key constraint `R_i : K_i → X_i` is an FD to the full attribute
//!   set with no strict subset of `K_i` being a key;
//! * a key-based IND (right-hand side is a key) is a *referential
//!   integrity constraint*.

use crate::attr::{AttrId, AttrSet};
use crate::error::RelationalError;
use crate::schema::{QualAttrs, RelId, Schema};
use std::fmt;

/// A functional dependency `R : lhs → rhs` within one relation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd {
    /// The relation the dependency lives in.
    pub rel: RelId,
    /// Left-hand side `Y`.
    pub lhs: AttrSet,
    /// Right-hand side `Z`.
    pub rhs: AttrSet,
}

impl Fd {
    /// Creates an FD.
    pub fn new(rel: RelId, lhs: AttrSet, rhs: AttrSet) -> Self {
        Fd { rel, lhs, rhs }
    }

    /// Is the dependency trivial (`Z ⊆ Y`)?
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }

    /// Renders `R: a, b -> c` with schema names.
    pub fn render(&self, schema: &Schema) -> String {
        let r = schema.relation(self.rel);
        format!(
            "{}: {} -> {}",
            r.name,
            r.render_set(&self.lhs),
            r.render_set(&self.rhs)
        )
    }
}

/// One side of an inclusion dependency: a relation and an *ordered*
/// attribute list.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndSide {
    /// The relation.
    pub rel: RelId,
    /// Ordered attribute list (positional correspondence with the other
    /// side).
    pub attrs: Vec<AttrId>,
}

impl IndSide {
    /// Creates a side.
    pub fn new(rel: RelId, attrs: Vec<AttrId>) -> Self {
        IndSide { rel, attrs }
    }

    /// Single-attribute side.
    pub fn single(rel: RelId, attr: AttrId) -> Self {
        IndSide {
            rel,
            attrs: vec![attr],
        }
    }

    /// The attribute list as an unordered set (for key comparisons).
    pub fn attr_set(&self) -> AttrSet {
        AttrSet::from_iter_ids(self.attrs.iter().copied())
    }

    /// As a [`QualAttrs`] (losing order).
    pub fn qualified(&self) -> QualAttrs {
        QualAttrs::new(self.rel, self.attr_set())
    }

    /// Renders `Relation[a, b]`.
    pub fn render(&self, schema: &Schema) -> String {
        let r = schema.relation(self.rel);
        let names: Vec<&str> = self.attrs.iter().map(|a| r.attr_name(*a)).collect();
        format!("{}[{}]", r.name, names.join(", "))
    }
}

/// An inclusion dependency `lhs ≪ rhs` (`r_lhs[Y] ⊆ r_rhs[Z]`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ind {
    /// Included side.
    pub lhs: IndSide,
    /// Including side.
    pub rhs: IndSide,
}

impl Ind {
    /// Creates an IND; both sides must have equal arity.
    pub fn new(lhs: IndSide, rhs: IndSide) -> Result<Self, RelationalError> {
        if lhs.attrs.len() != rhs.attrs.len() {
            return Err(RelationalError::IndArityMismatch {
                lhs: lhs.attrs.len(),
                rhs: rhs.attrs.len(),
            });
        }
        Ok(Ind { lhs, rhs })
    }

    /// Unary IND between single attributes.
    pub fn unary(lr: RelId, la: AttrId, rr: RelId, ra: AttrId) -> Self {
        Ind {
            lhs: IndSide::single(lr, la),
            rhs: IndSide::single(rr, ra),
        }
    }

    /// Renders `A[x] << B[y]` with schema names.
    pub fn render(&self, schema: &Schema) -> String {
        format!("{} << {}", self.lhs.render(schema), self.rhs.render(schema))
    }
}

impl fmt::Display for Ind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R{}{:?} << R{}{:?}",
            self.lhs.rel.0,
            self.lhs.attrs.iter().map(|a| a.0).collect::<Vec<_>>(),
            self.rhs.rel.0,
            self.rhs.attrs.iter().map(|a| a.0).collect::<Vec<_>>()
        )
    }
}

/// A key constraint on a relation (the set `K` of the paper holds one or
/// more of these per relation — the `unique` declarations).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    /// The relation.
    pub rel: RelId,
    /// The unique attribute set.
    pub attrs: AttrSet,
}

impl Key {
    /// Creates a key constraint.
    pub fn new(rel: RelId, attrs: AttrSet) -> Self {
        Key { rel, attrs }
    }

    /// Renders `Relation.{a, b}`.
    pub fn render(&self, schema: &Schema) -> String {
        QualAttrs::new(self.rel, self.attrs.clone()).render(schema)
    }
}

/// The constraint sets `K` (keys) and `N` (not-null attributes) of §4.
///
/// Following the paper, a `unique` declaration implies not-null on every
/// involved attribute; [`Constraints::normalize`] enforces that closure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Constraints {
    /// Declared unique/key attribute sets, `K`.
    pub keys: Vec<Key>,
    /// Null-not-allowed attributes, `N` (already closed under the
    /// key-implies-not-null rule after [`Constraints::normalize`]).
    pub not_null: Vec<(RelId, AttrId)>,
}

impl Constraints {
    /// Empty constraint set.
    pub fn new() -> Self {
        Constraints::default()
    }

    /// Adds a key (unique) declaration.
    pub fn add_key(&mut self, rel: RelId, attrs: AttrSet) {
        let key = Key::new(rel, attrs);
        if !self.keys.contains(&key) {
            self.keys.push(key);
        }
    }

    /// Adds a not-null declaration.
    pub fn add_not_null(&mut self, rel: RelId, attr: AttrId) {
        if !self.not_null.contains(&(rel, attr)) {
            self.not_null.push((rel, attr));
        }
    }

    /// Applies the paper's closure: every attribute of a key is
    /// not-null. Call after all declarations are registered.
    pub fn normalize(&mut self) {
        let extra: Vec<(RelId, AttrId)> = self
            .keys
            .iter()
            .flat_map(|k| k.attrs.iter().map(move |a| (k.rel, a)))
            .collect();
        for pair in extra {
            self.add_not_null(pair.0, pair.1);
        }
        self.not_null.sort_unstable();
        self.keys.sort();
    }

    /// Keys declared on `rel`.
    pub fn keys_of(&self, rel: RelId) -> impl Iterator<Item = &Key> {
        self.keys.iter().filter(move |k| k.rel == rel)
    }

    /// The *primary* key of `rel` if any — the first declared key. The
    /// paper speaks of "the key of `R_i(X_i)`" in RHS-Discovery; legacy
    /// dictionaries generally have one unique constraint per relation.
    pub fn primary_key(&self, rel: RelId) -> Option<&Key> {
        self.keys_of(rel).next()
    }

    /// Is `attrs` exactly a declared key of `rel`?
    pub fn is_key(&self, rel: RelId, attrs: &AttrSet) -> bool {
        self.keys_of(rel).any(|k| &k.attrs == attrs)
    }

    /// Does `attrs` contain a declared key of `rel` (i.e. is it a
    /// superkey w.r.t. the dictionary)?
    pub fn is_superkey(&self, rel: RelId, attrs: &AttrSet) -> bool {
        self.keys_of(rel).any(|k| k.attrs.is_subset(attrs))
    }

    /// Does `attrs` intersect any declared key of `rel`?
    pub fn intersects_key(&self, rel: RelId, attrs: &AttrSet) -> bool {
        self.keys_of(rel).any(|k| !k.attrs.is_disjoint(attrs))
    }

    /// Is the single attribute declared (or implied) not-null?
    pub fn is_not_null(&self, rel: RelId, attr: AttrId) -> bool {
        self.not_null.contains(&(rel, attr))
    }

    /// Are all attributes of the set not-null?
    pub fn all_not_null(&self, rel: RelId, attrs: &AttrSet) -> bool {
        attrs.iter().all(|a| self.is_not_null(rel, a))
    }

    /// The not-null attribute set of one relation (`N ∩ X_i`).
    pub fn not_null_set(&self, rel: RelId) -> AttrSet {
        AttrSet::from_iter_ids(
            self.not_null
                .iter()
                .filter(|(r, _)| *r == rel)
                .map(|(_, a)| *a),
        )
    }
}

/// The full dependency set `Δ = F ∪ IND` carried alongside a database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dependencies {
    /// Functional dependencies `F`.
    pub fds: Vec<Fd>,
    /// Inclusion dependencies `IND`.
    pub inds: Vec<Ind>,
}

impl Dependencies {
    /// Empty `Δ`.
    pub fn new() -> Self {
        Dependencies::default()
    }

    /// Adds an FD if not already present.
    pub fn add_fd(&mut self, fd: Fd) {
        if !self.fds.contains(&fd) {
            self.fds.push(fd);
        }
    }

    /// Adds an IND if not already present.
    pub fn add_ind(&mut self, ind: Ind) {
        if !self.inds.contains(&ind) {
            self.inds.push(ind);
        }
    }

    /// The FDs of one relation.
    pub fn fds_of(&self, rel: RelId) -> impl Iterator<Item = &Fd> {
        self.fds.iter().filter(move |f| f.rel == rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Relation, Schema};
    use crate::value::Domain;

    fn schema() -> (Schema, RelId, RelId) {
        let mut s = Schema::new();
        let a = s
            .add_relation(Relation::of(
                "A",
                &[("x", Domain::Int), ("y", Domain::Int), ("z", Domain::Int)],
            ))
            .unwrap();
        let b = s
            .add_relation(Relation::of("B", &[("u", Domain::Int)]))
            .unwrap();
        (s, a, b)
    }

    #[test]
    fn fd_triviality() {
        let (_, a, _) = schema();
        let f = Fd::new(a, AttrSet::from_indices([0, 1]), AttrSet::from_indices([1]));
        assert!(f.is_trivial());
        let g = Fd::new(a, AttrSet::from_indices([0]), AttrSet::from_indices([1]));
        assert!(!g.is_trivial());
    }

    #[test]
    fn fd_render_uses_names() {
        let (s, a, _) = schema();
        let f = Fd::new(a, AttrSet::from_indices([0]), AttrSet::from_indices([1, 2]));
        assert_eq!(f.render(&s), "A: x -> y, z");
    }

    #[test]
    fn ind_requires_matching_arity() {
        let (_, a, b) = schema();
        let bad = Ind::new(
            IndSide::new(a, vec![AttrId(0), AttrId(1)]),
            IndSide::new(b, vec![AttrId(0)]),
        );
        assert!(bad.is_err());
        let ok = Ind::unary(a, AttrId(0), b, AttrId(0));
        assert_eq!(ok.lhs.attrs.len(), 1);
    }

    #[test]
    fn ind_render() {
        let (s, a, b) = schema();
        let ind = Ind::unary(a, AttrId(2), b, AttrId(0));
        assert_eq!(ind.render(&s), "A[z] << B[u]");
    }

    #[test]
    fn constraints_normalize_closes_keys_to_not_null() {
        let (_, a, b) = schema();
        let mut c = Constraints::new();
        c.add_key(a, AttrSet::from_indices([0, 1]));
        c.add_not_null(b, AttrId(0));
        c.normalize();
        assert!(c.is_not_null(a, AttrId(0)));
        assert!(c.is_not_null(a, AttrId(1)));
        assert!(!c.is_not_null(a, AttrId(2)));
        assert!(c.is_not_null(b, AttrId(0)));
    }

    #[test]
    fn key_predicates() {
        let (_, a, _) = schema();
        let mut c = Constraints::new();
        c.add_key(a, AttrSet::from_indices([0, 1]));
        c.normalize();
        assert!(c.is_key(a, &AttrSet::from_indices([0, 1])));
        assert!(!c.is_key(a, &AttrSet::from_indices([0])));
        assert!(c.is_superkey(a, &AttrSet::from_indices([0, 1, 2])));
        assert!(!c.is_superkey(a, &AttrSet::from_indices([0, 2])));
        assert!(c.intersects_key(a, &AttrSet::from_indices([1, 2])));
        assert!(!c.intersects_key(a, &AttrSet::from_indices([2])));
    }

    #[test]
    fn dependencies_dedup() {
        let (_, a, b) = schema();
        let mut d = Dependencies::new();
        let ind = Ind::unary(a, AttrId(0), b, AttrId(0));
        d.add_ind(ind.clone());
        d.add_ind(ind);
        assert_eq!(d.inds.len(), 1);
        let fd = Fd::new(a, AttrSet::from_indices([0]), AttrSet::from_indices([1]));
        d.add_fd(fd.clone());
        d.add_fd(fd);
        assert_eq!(d.fds.len(), 1);
        assert_eq!(d.fds_of(a).count(), 1);
        assert_eq!(d.fds_of(b).count(), 0);
    }

    #[test]
    fn not_null_set_per_relation() {
        let (_, a, b) = schema();
        let mut c = Constraints::new();
        c.add_not_null(a, AttrId(2));
        c.add_not_null(b, AttrId(0));
        c.normalize();
        assert_eq!(c.not_null_set(a), AttrSet::from_indices([2]));
        assert_eq!(c.not_null_set(b), AttrSet::from_indices([0]));
    }
}
