//! The counting-backend seam: one trait for the `‖·‖` primitive.
//!
//! Every algorithm of the paper is driven by a handful of extension
//! statistics — `‖r[A]‖` distinct projections, the three IND-Discovery
//! join cardinalities, FD extension tests, and LHS row groups (§6).
//! The repo grew three independent implementations of them: the
//! `Value`-based reference code ([`crate::counting`] / [`crate::table`]),
//! the dictionary-encoded integer kernels ([`crate::encode`]), and a
//! generated-SQL path that queries the extension the way a real DBRE
//! tool would interrogate a live legacy DBMS (`dbre-sql`).
//!
//! [`CountBackend`] is the seam that makes them interchangeable: the
//! memoizing [`crate::stats::StatsEngine`] decorates *any*
//! `dyn CountBackend` with generation-tagged result caches, the
//! pipeline selects a backend per run, and the differential test suite
//! pins all implementations to the same answers. A future backend
//! (sharded, remote, sampled) is a one-file addition that inherits the
//! caching, the pipeline wiring, and the test harness.
//!
//! Two backends live here — [`ReferenceBackend`] (the `Value`-based
//! reference semantics) and [`EncodedBackend`] (the dictionary-encoded
//! kernels, owning the per-column dictionary cache). The SQL backend
//! lives in `dbre-sql` (`SqlBackend`), respecting the dependency
//! direction: this crate knows nothing about SQL.
//!
//! NULL conventions are part of the contract (see the trait docs):
//! projections and counts drop NULL-bearing tuples (SQL
//! `COUNT(DISTINCT …)`), [`CountBackend::fd_holds`] skips NULL-LHS rows
//! and compares RHS values structurally (`NULL = NULL`, `NaN = NaN` by
//! bit key), while [`CountBackend::partition1`] keeps the mining
//! convention (`NULL = NULL`). Every implementation must reproduce
//! these exactly — the differential proptests enforce it.

use crate::attr::AttrId;
use crate::bufpool::PageCacheStats;
use crate::counting::{join_stats, EquiJoin, JoinStats};
use crate::database::Database;
use crate::delta::Delta;
use crate::deps::{Fd, Ind};
use crate::encode::{
    decode_set_cols, distinct_codes_cols, intersect_count, lhs_groups_cols, partition1_col,
    ColumnDict, DictTable, EncodedSet,
};
use crate::partitions::StrippedPartition;
use crate::schema::RelId;
use crate::sketch::ColumnSketch;
use crate::spill::SpillCacheStats;
use crate::table::ProjKey;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, RwLock};

/// What a cache shard does when its lock is recovered from poisoning:
/// discard everything it holds. Dropping a cache is always sound (the
/// next probe rebuilds from the extension) — serving it is not, see
/// [`read_recover`].
pub(crate) trait PoisonReset {
    /// Discards the shard's contents.
    fn reset(&mut self);
}

impl<K, V, S> PoisonReset for HashMap<K, V, S> {
    fn reset(&mut self) {
        self.clear();
    }
}

/// Acquires a read guard, recovering from poisoning by *clearing the
/// shard first*.
///
/// A poisoned lock means a writer panicked while holding the guard.
/// Individual inserts here are single `HashMap::insert` calls of
/// fully-formed values, so a torn *entry* is impossible — but the
/// panicking thread may still have inserted a value computed from a
/// state that itself panicked halfway (a probe that blew up after
/// caching an intermediate), and a recovered reader would then serve
/// that entry forever. Discarding the shard on recovery costs one
/// cache refill and removes the possibility; `clear_poison` is called
/// so later lookups don't re-purge a healthy cache.
pub(crate) fn read_recover<T: PoisonReset>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    if let Ok(guard) = lock.read() {
        return guard;
    }
    // Escalate to a write to purge, then retake the read lock.
    drop(write_recover(lock));
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write twin of [`read_recover`]: same purge-on-poison contract,
/// applied directly to the write guard.
pub(crate) fn write_recover<T: PoisonReset>(
    lock: &RwLock<T>,
) -> std::sync::RwLockWriteGuard<'_, T> {
    match lock.write() {
        Ok(guard) => guard,
        Err(poison) => {
            let mut guard = poison.into_inner();
            guard.reset();
            lock.clear_poison();
            guard
        }
    }
}

/// A cache entry tagged with the table generation it was built from.
pub(crate) struct Tagged<T> {
    pub(crate) gen: u64,
    pub(crate) value: Arc<T>,
}

impl<T> Clone for Tagged<T> {
    fn clone(&self) -> Self {
        Tagged {
            gen: self.gen,
            value: Arc::clone(&self.value),
        }
    }
}

/// Generation-tagged cache keyed by a projection `(rel, attrs)`.
type ProjectionCache<T> = RwLock<HashMap<(RelId, Vec<AttrId>), Tagged<T>>>;

/// Execution counters a backend may expose about *how* it served its
/// probes — all zero for backends with a single execution strategy.
///
/// The SQL backend populates all three: `fallback_failures` counts
/// generated statements that failed to execute and were silently
/// served by the reference semantics (a healthy backend keeps this at
/// zero — the pipeline surfaces it as a warning), while `batch_ops` /
/// `tuple_fallback_ops` record how many executor operators ran on the
/// columnar batch path versus the tuple-at-a-time interpreter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendExecStats {
    /// Probes whose native execution failed and were served by a
    /// reference fallback instead. Zero on a healthy backend.
    pub fallback_failures: u64,
    /// Executor operators served by the columnar batch path.
    pub batch_ops: u64,
    /// Executor operators served by the tuple-at-a-time fallback
    /// interpreter.
    pub tuple_fallback_ops: u64,
}

/// One implementation of the paper's `‖·‖` counting primitive and the
/// extension tests built on it.
///
/// All methods take the [`Database`] by parameter — backends are
/// (logically) stateless services over whatever extension they are
/// handed; any internal caching (see [`EncodedBackend`]) must be
/// generation-aware and invisible in the results. `Send + Sync` is a
/// supertrait so one backend can serve the parallel workers of
/// [`crate::par::par_map`] through a shared reference.
///
/// Semantics contract (pinned by the differential proptest suites):
///
/// * [`count_distinct`](CountBackend::count_distinct) /
///   [`projection`](CountBackend::projection) — distinct projected
///   tuples with NULL-bearing rows dropped (SQL `COUNT(DISTINCT …)`);
/// * [`join_stats`](CountBackend::join_stats) — the three cardinalities
///   `N_k`, `N_l`, `N_kl` of §6.1, NULLs never join;
/// * [`lhs_groups`](CountBackend::lhs_groups) — row-index groups of
///   size ≥ 2 agreeing on the attributes, NULL-bearing rows skipped
///   (unless the attribute list is empty), groups ascending and sorted;
/// * [`fd_holds`](CountBackend::fd_holds) — SQL convention, same
///   answer as [`Database::fd_holds`];
/// * [`partition1`](CountBackend::partition1) — the mining convention
///   (`NULL = NULL`) of [`crate::partitions`].
pub trait CountBackend: Send + Sync {
    /// A short stable name for reports and the CLI (`"reference"`,
    /// `"encoded"`, `"sql"`).
    fn name(&self) -> &'static str;

    /// `‖rel[attrs]‖` — the paper's cardinality query (SQL
    /// `COUNT(DISTINCT attrs)`: NULL-bearing tuples dropped).
    fn count_distinct(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize;

    /// The three IND-Discovery cardinalities for `join` (§6.1).
    fn join_stats(&self, db: &Database, join: &EquiJoin) -> JoinStats;

    /// Row-index groups (size ≥ 2) agreeing on `attrs` under SQL
    /// semantics — rows with a NULL in `attrs` are skipped, exactly
    /// like [`Database::fd_holds`]. Deterministically ordered: indices
    /// ascending within a group, groups sorted.
    fn lhs_groups(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<Vec<Vec<usize>>>;

    /// The distinct projection `π_{attrs}(rel)` (NULL rows dropped) as
    /// `Value` tuples — for consumers that need the actual values,
    /// e.g. materializing a conceptualized intersection.
    fn projection(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<HashSet<ProjKey>> {
        Arc::new(db.table(rel).distinct_projection(attrs))
    }

    /// Does `fd` hold in the extension? SQL NULL semantics: NULL-LHS
    /// rows are skipped; the RHS comparison is structural equality on
    /// the raw values (`NULL = NULL`, `NaN = NaN` by bit key). The
    /// default builds on [`lhs_groups`](CountBackend::lhs_groups) and
    /// touches only the grouped rows.
    fn fd_holds(&self, db: &Database, fd: &Fd) -> bool {
        let lhs: Vec<AttrId> = fd.lhs.iter().collect();
        let rhs: Vec<AttrId> = fd.rhs.iter().collect();
        let groups = self.lhs_groups(db, fd.rel, &lhs);
        let table = db.table(fd.rel);
        let rcols: Vec<&[Value]> = rhs.iter().map(|a| table.column(*a)).collect();
        groups.iter().all(|group| {
            let first = group[0];
            group[1..]
                .iter()
                .all(|&i| rcols.iter().all(|c| c[i] == c[first]))
        })
    }

    /// Does `ind` hold in the extension? Same answer as
    /// [`Database::ind_holds`]. The default phrases inclusion through
    /// [`join_stats`](CountBackend::join_stats): `r[X] ⊆ s[Y]` iff the
    /// intersection has the full left cardinality.
    fn ind_holds(&self, db: &Database, ind: &Ind) -> bool {
        // An Ind guarantees equal side arity, so the struct literal
        // cannot violate the EquiJoin invariant.
        let join = EquiJoin {
            left: ind.lhs.clone(),
            right: ind.rhs.clone(),
        };
        let s = self.join_stats(db, &join);
        s.n_join == s.n_left
    }

    /// The stripped partition `π_{attr}` under the **mining
    /// convention** (`NULL = NULL`) — the substrate of the TANE/key
    /// baselines, not expressible as a plain SQL count.
    fn partition1(&self, db: &Database, rel: RelId, attr: AttrId) -> Arc<StrippedPartition> {
        Arc::new(StrippedPartition::for_attribute(db.table(rel), attr))
    }

    /// A hint that `rel` is about to be queried heavily (e.g. right
    /// after a CSV import, while the rows are hot): backends may build
    /// internal structures eagerly. Results must be unaffected.
    fn prewarm(&self, db: &Database, rel: RelId) {
        let _ = (db, rel);
    }

    /// The backend's dictionary encoding of one column, when it
    /// maintains one — the dict-access seam the batch SQL executor
    /// scans through, so it pulls codes from the same
    /// generation-tagged cache as every counting probe instead of
    /// re-interning columns. Backends without an encoding return
    /// `None` and consumers build their own dictionary.
    fn column_dict(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<Arc<ColumnDict>> {
        let _ = (db, rel, attr);
        None
    }

    /// The backend's sketch of one column
    /// ([`crate::sketch::ColumnSketch`]: exact distinct hashes, HLL,
    /// blocked Bloom), when it can produce one cheaply and *soundly* —
    /// the prefilter seam the discovery stages consult before paying
    /// for exact kernels. `None` (the default) disables pruning for
    /// the column, which is always correct: sketches only ever
    /// suppress work whose result they prove, so their absence merely
    /// costs speed. Implementations must derive the sketch from the
    /// same generation-consistent state that serves their counting
    /// probes.
    fn column_sketch(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<Arc<ColumnSketch>> {
        let _ = (db, rel, attr);
        None
    }

    /// A snapshot of the backend's [`BackendExecStats`]. Defaults to
    /// all-zero for backends with a single execution strategy.
    fn exec_stats(&self) -> BackendExecStats {
        BackendExecStats::default()
    }

    /// A snapshot of the backend's page-cache counters
    /// ([`crate::bufpool::PageCacheStats`]). All-zero for fully
    /// in-memory backends; the paged backend reports its buffer
    /// pool's hits, misses and evictions here, and the pipeline
    /// snapshots them into its run statistics.
    fn page_stats(&self) -> PageCacheStats {
        PageCacheStats::default()
    }

    /// A snapshot of the backend's spill-cache counters
    /// ([`crate::spill::SpillCacheStats`]). All-zero for backends
    /// without a persistent spill cache; the paged backend counts one
    /// hit per streamed-ingest table whose encode pass the cache
    /// skipped, one miss per table that had to encode.
    fn spill_stats(&self) -> SpillCacheStats {
        SpillCacheStats::default()
    }

    /// Carries the backend's internal caches across one committed
    /// [`Delta`] — `before`/`after` are the database versions on
    /// either side of the generation boundary, and the delta has
    /// already been applied to `after`. Implementations must leave
    /// every probe answer unchanged: anything they cannot maintain
    /// incrementally they simply evict (the generation tags make
    /// stale entries unreachable anyway; maintenance is a warm-cache
    /// optimization, never a correctness requirement). The default
    /// does nothing.
    fn apply_delta(&self, before: &Database, after: &Database, delta: &Delta) {
        let _ = (before, after, delta);
    }
}

/// Shared `Value`-level implementation of the LHS-group contract (see
/// [`CountBackend::lhs_groups`]); also the oracle the differential
/// tests compare against, and the fallback the paged backend degrades
/// to on a spill-file failure.
pub(crate) fn lhs_groups_reference(db: &Database, rel: RelId, attrs: &[AttrId]) -> Vec<Vec<usize>> {
    let table = db.table(rel);
    let mut map: HashMap<ProjKey, Vec<usize>> = HashMap::new();
    'rows: for i in 0..table.len() {
        let mut key = Vec::with_capacity(attrs.len());
        for a in attrs {
            let v = &table.column(*a)[i];
            if v.is_null() {
                continue 'rows;
            }
            key.push(v.clone());
        }
        map.entry(key).or_default().push(i);
    }
    let mut groups: Vec<Vec<usize>> = map.into_values().filter(|g| g.len() >= 2).collect();
    groups.sort();
    groups
}

/// The `Value`-based reference backend: every probe is a fresh scan
/// through the primitives of [`crate::counting`] / [`crate::table`] /
/// [`crate::partitions`]. Slowest and simplest — the semantics oracle
/// the other backends are differentially pinned against, and the
/// fallback when a specialized backend cannot express a probe.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceBackend;

impl CountBackend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn count_distinct(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        db.table(rel).count_distinct(attrs)
    }

    fn join_stats(&self, db: &Database, join: &EquiJoin) -> JoinStats {
        join_stats(db, join)
    }

    fn lhs_groups(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<Vec<Vec<usize>>> {
        Arc::new(lhs_groups_reference(db, rel, attrs))
    }

    fn fd_holds(&self, db: &Database, fd: &Fd) -> bool {
        // The Database-level check is the original reference; keep the
        // backend answer literally that one.
        db.fd_holds(fd)
    }

    fn ind_holds(&self, db: &Database, ind: &Ind) -> bool {
        db.ind_holds(ind)
    }
}

/// The dictionary-encoded backend (PR 3 kernels): each column a probe
/// touches is interned once per table generation into a
/// [`ColumnDict`], and counting / grouping / partitioning / join
/// kernels run on dense `u32` codes instead of cloning `Value` tuples
/// per row.
///
/// The per-column dictionaries and the per-projection encoded sets are
/// cached *inside* the backend, tagged with [`Database::generation`]
/// so a mutated table can never serve stale codes. Encoding lazily per
/// column matters on the paper's workloads: a query set `Q` joins a
/// handful of key columns of wide denormalized relations, so encoding
/// whole tables up front would dominate the cold path the encoding is
/// meant to speed up.
#[derive(Default)]
pub struct EncodedBackend {
    /// Per-column dictionary encodings, keyed per
    /// `(relation, attribute)` so a probe touching two columns of a
    /// wide table pays for exactly those two builds.
    columns: RwLock<HashMap<(RelId, AttrId), Tagged<ColumnDict>>>,
    /// Encoded distinct-code sets per `(rel, attrs)` — shared between
    /// counts, projections and every join side touching them.
    encoded: ProjectionCache<EncodedSet>,
}

impl EncodedBackend {
    /// A backend with empty dictionary caches.
    pub fn new() -> Self {
        EncodedBackend::default()
    }

    /// The dictionary encoding of one column of `rel`, built once per
    /// table generation and shared out of the cache. The returned
    /// `Arc` is safe to share read-only across parallel workers.
    pub fn column_dict(&self, db: &Database, rel: RelId, attr: AttrId) -> Arc<ColumnDict> {
        let gen = db.generation(rel);
        let key = (rel, attr);
        if let Some(entry) = read_recover(&self.columns).get(&key) {
            if entry.gen == gen {
                return Arc::clone(&entry.value);
            }
        }
        let value = Arc::new(ColumnDict::build(db.table(rel).column(attr)));
        // Column keys are shared across concurrent probes (two
        // parallel join probes can touch the same column), so re-check
        // under the write lock: if a concurrent prober beat us, adopt
        // its entry and drop ours. Building before locking wastes the
        // loser's pass but never serializes distinct columns.
        let mut columns = write_recover(&self.columns);
        if let Some(entry) = columns.get(&key) {
            if entry.gen == gen {
                return Arc::clone(&entry.value);
            }
        }
        columns.insert(
            key,
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        );
        value
    }

    /// The cached column dictionaries of `attrs`, in order (repeats
    /// allowed).
    fn attr_dicts(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Vec<Arc<ColumnDict>> {
        attrs
            .iter()
            .map(|a| self.column_dict(db, rel, *a))
            .collect()
    }

    /// The dictionary encoding of `rel`'s *whole* table, assembled
    /// from the per-column cache (cheap `Arc` clones for already-warm
    /// columns). Whole-table consumers — CSV import prewarming, batch
    /// FD checks via `check_encoded` — use this; statistic probes go
    /// through the per-column kernels and never force untouched
    /// columns to encode.
    pub fn dict(&self, db: &Database, rel: RelId) -> Arc<DictTable> {
        let table = db.table(rel);
        let columns = (0..table.arity())
            .map(|i| self.column_dict(db, rel, AttrId(i as u16)))
            .collect();
        Arc::new(DictTable::from_columns(columns, table.len()))
    }

    /// The distinct non-NULL projected code tuples `π_{attrs}(rel)` in
    /// encoded form, shared out of the cache.
    fn encoded_set(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<EncodedSet> {
        let gen = db.generation(rel);
        let key = (rel, attrs.to_vec());
        if let Some(entry) = read_recover(&self.encoded).get(&key) {
            if entry.gen == gen {
                return Arc::clone(&entry.value);
            }
        }
        let dicts = self.attr_dicts(db, rel, attrs);
        let cols: Vec<&ColumnDict> = dicts.iter().map(Arc::as_ref).collect();
        let value = Arc::new(distinct_codes_cols(&cols, db.table(rel).len()));
        let mut encoded = write_recover(&self.encoded);
        if let Some(entry) = encoded.get(&key) {
            if entry.gen == gen {
                return Arc::clone(&entry.value);
            }
        }
        encoded.insert(
            key,
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        );
        value
    }
}

impl CountBackend for EncodedBackend {
    fn name(&self) -> &'static str {
        "encoded"
    }

    fn count_distinct(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        self.encoded_set(db, rel, attrs).len()
    }

    fn join_stats(&self, db: &Database, join: &EquiJoin) -> JoinStats {
        let ldicts = self.attr_dicts(db, join.left.rel, &join.left.attrs);
        let rdicts = self.attr_dicts(db, join.right.rel, &join.right.attrs);
        let left = self.encoded_set(db, join.left.rel, &join.left.attrs);
        let right = self.encoded_set(db, join.right.rel, &join.right.attrs);
        let lcols: Vec<&ColumnDict> = ldicts.iter().map(Arc::as_ref).collect();
        let rcols: Vec<&ColumnDict> = rdicts.iter().map(Arc::as_ref).collect();
        let n_join = intersect_count(&lcols, &left, &rcols, &right);
        JoinStats {
            n_left: left.len(),
            n_right: right.len(),
            n_join,
        }
    }

    fn lhs_groups(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<Vec<Vec<usize>>> {
        let dicts = self.attr_dicts(db, rel, attrs);
        let cols: Vec<&ColumnDict> = dicts.iter().map(Arc::as_ref).collect();
        Arc::new(lhs_groups_cols(&cols, db.table(rel).len()))
    }

    fn projection(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<HashSet<ProjKey>> {
        let set = self.encoded_set(db, rel, attrs);
        let dicts = self.attr_dicts(db, rel, attrs);
        let cols: Vec<&ColumnDict> = dicts.iter().map(Arc::as_ref).collect();
        Arc::new(decode_set_cols(&cols, &set))
    }

    fn partition1(&self, db: &Database, rel: RelId, attr: AttrId) -> Arc<StrippedPartition> {
        // Array-bucket build over the code domain — no hashing.
        Arc::new(partition1_col(&self.column_dict(db, rel, attr)))
    }

    fn prewarm(&self, db: &Database, rel: RelId) {
        // Interning every column while the rows are hot is exactly
        // assembling the whole-table dictionary.
        self.dict(db, rel);
    }

    fn column_dict(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<Arc<ColumnDict>> {
        Some(EncodedBackend::column_dict(self, db, rel, attr))
    }

    fn column_sketch(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<Arc<ColumnSketch>> {
        // Lazily attached to the generation-cached dictionary, so the
        // sketch always summarizes exactly the state the counting
        // kernels read (and is built at most once per generation).
        EncodedBackend::column_dict(self, db, rel, attr).sketch()
    }

    /// Delta maintenance of the dictionary caches. Appends extend the
    /// cached interning (codes stay first-occurrence canonical) and
    /// insert the appended code tuples into cached distinct sets;
    /// deletes decrement per-code counts, evicting a dictionary only
    /// when a value's last occurrence vanished (a rebuild would assign
    /// different codes). Distinct sets carry no multiplicities, so
    /// deletes evict them wholesale.
    fn apply_delta(&self, before: &Database, after: &Database, delta: &Delta) {
        let rel = delta.rel();
        let old_gen = before.generation(rel);
        let new_gen = after.generation(rel);
        {
            let mut columns = write_recover(&self.columns);
            let keys: Vec<(RelId, AttrId)> =
                columns.keys().filter(|(r, _)| *r == rel).copied().collect();
            for key in keys {
                let maintained = columns
                    .get(&key)
                    .filter(|entry| entry.gen == old_gen)
                    .and_then(|entry| {
                        let mut dict = (*entry.value).clone();
                        match delta {
                            Delta::Append { rows, .. } => {
                                let cells: Vec<Value> =
                                    rows.iter().map(|r| r[key.1.index()].clone()).collect();
                                dict.append_values(&cells);
                                Some(dict)
                            }
                            Delta::Delete { rows, .. } => dict.remove_rows(rows).then_some(dict),
                        }
                    });
                match maintained {
                    Some(dict) => {
                        columns.insert(
                            key,
                            Tagged {
                                gen: new_gen,
                                value: Arc::new(dict),
                            },
                        );
                    }
                    None => {
                        columns.remove(&key);
                    }
                }
            }
        }
        match delta {
            Delta::Delete { .. } => {
                let mut encoded = write_recover(&self.encoded);
                encoded.retain(|(r, _), _| *r != rel);
            }
            Delta::Append { .. } => {
                let old_rows = before.table(rel).len();
                let new_rows = after.table(rel).len();
                let stale: Vec<(RelId, Vec<AttrId>)> = {
                    let encoded = read_recover(&self.encoded);
                    encoded.keys().filter(|(r, _)| *r == rel).cloned().collect()
                };
                for key in stale {
                    // Pull the maintained (or freshly built) dicts
                    // outside the encoded-set lock; `column_dict` only
                    // touches the columns shard.
                    let dicts = self.attr_dicts(after, rel, &key.1);
                    let cols: Vec<&ColumnDict> = dicts.iter().map(Arc::as_ref).collect();
                    let mut encoded = write_recover(&self.encoded);
                    let maintained = encoded.get(&key).filter(|e| e.gen == old_gen).map(|entry| {
                        let mut set = (*entry.value).clone();
                        set.append_rows(&cols, old_rows, new_rows);
                        set
                    });
                    match maintained {
                        Some(set) => {
                            encoded.insert(
                                key,
                                Tagged {
                                    gen: new_gen,
                                    value: Arc::new(set),
                                },
                            );
                        }
                        None => {
                            encoded.remove(&key);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::deps::IndSide;
    use crate::schema::Relation;
    use crate::value::Domain;

    fn sample_db() -> (Database, RelId, RelId) {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("a", Domain::Int), ("b", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("c", Domain::Int)]))
            .unwrap();
        for (a, b) in [(1, 10), (1, 10), (2, 20), (3, 20), (4, 30)] {
            db.insert(l, vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        db.insert(l, vec![Value::Null, Value::Int(40)]).unwrap();
        for c in [1, 2, 3, 9] {
            db.insert(r, vec![Value::Int(c)]).unwrap();
        }
        (db, l, r)
    }

    /// Every probe of the two in-crate backends agrees on a NULL-bearing
    /// database (the exhaustive pinning lives in the differential
    /// proptest suites; this is the smoke test).
    #[test]
    fn reference_and_encoded_agree() {
        let (db, l, r) = sample_db();
        let reference = ReferenceBackend;
        let encoded = EncodedBackend::new();
        let backends: [&dyn CountBackend; 2] = [&reference, &encoded];
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        let fd = Fd::new(
            l,
            AttrSet::from_indices([0u16]),
            AttrSet::from_indices([1u16]),
        );
        let ind = Ind::unary(l, AttrId(0), r, AttrId(0));
        for b in backends {
            assert_eq!(b.count_distinct(&db, l, &[AttrId(0)]), 4, "{}", b.name());
            assert_eq!(b.join_stats(&db, &join), join_stats(&db, &join));
            assert_eq!(*b.lhs_groups(&db, l, &[AttrId(0)]), vec![vec![0, 1]]);
            assert_eq!(b.fd_holds(&db, &fd), db.fd_holds(&fd));
            assert_eq!(b.ind_holds(&db, &ind), db.ind_holds(&ind));
            assert_eq!(
                *b.projection(&db, l, &[AttrId(0)]),
                db.table(l).distinct_projection(&[AttrId(0)])
            );
            assert_eq!(
                *b.partition1(&db, l, AttrId(1)),
                StrippedPartition::for_attribute(db.table(l), AttrId(1))
            );
        }
    }

    /// The encoded backend's internal caches are generation-aware: a
    /// mutation is visible on the very next probe.
    #[test]
    fn encoded_cache_invalidates_on_mutation() {
        let (mut db, l, _) = sample_db();
        let encoded = EncodedBackend::new();
        assert_eq!(encoded.count_distinct(&db, l, &[AttrId(0)]), 4);
        db.insert(l, vec![Value::Int(99), Value::Int(1)]).unwrap();
        assert_eq!(encoded.count_distinct(&db, l, &[AttrId(0)]), 5);
    }

    /// A thread that panics while holding a cache write guard poisons
    /// the lock — recovery must *discard* whatever the panicking
    /// thread wrote, never serve it. The thread here deliberately
    /// plants a bogus entry (an impossible cardinality) before
    /// panicking; if recovery merely took `into_inner`, the next probe
    /// would report 999.
    #[test]
    fn poisoned_cache_is_cleared_not_served() {
        let (db, l, _) = sample_db();
        let encoded = EncodedBackend::new();
        assert_eq!(encoded.count_distinct(&db, l, &[AttrId(0)]), 4);
        let gen = db.generation(l);
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let mut guard = encoded.encoded.write().unwrap();
                guard.insert(
                    (l, vec![AttrId(0)]),
                    Tagged {
                        gen,
                        value: Arc::new(EncodedSet::Unary { card: 999 }),
                    },
                );
                panic!("poison the encoded-set cache");
            });
            assert!(handle.join().is_err(), "the planting thread must panic");
        });
        assert!(encoded.encoded.is_poisoned(), "lock must be poisoned");
        // Recovery path: the shard is purged, the probe recomputes.
        assert_eq!(encoded.count_distinct(&db, l, &[AttrId(0)]), 4);
        assert!(
            !encoded.encoded.is_poisoned(),
            "recovery must clear the poison flag so later probes see a healthy cache"
        );
    }

    /// Prewarming builds every column dictionary but changes no answer.
    #[test]
    fn prewarm_is_transparent() {
        let (db, l, _) = sample_db();
        let encoded = EncodedBackend::new();
        encoded.prewarm(&db, l);
        assert_eq!(
            encoded.count_distinct(&db, l, &[AttrId(0), AttrId(1)]),
            ReferenceBackend.count_distinct(&db, l, &[AttrId(0), AttrId(1)])
        );
    }
}
