//! Normal-form analysis: 1NF, 2NF, 3NF, BCNF.
//!
//! The paper annotates each relation of its worked example with its
//! normal form (`Person … 2NF`, `HEmployee … 3NF`, `Department … 2NF`,
//! `Assignment … 1NF`) and the whole method exists to lift a 1NF schema
//! into 3NF. This module decides the normal form of a relation given its
//! attribute universe and FD set, and of a whole schema given `Δ`.

use crate::attr::AttrSet;
use crate::deps::Fd;
use crate::fd_theory::{candidate_keys, closure, is_superkey, minimal_cover, prime_attributes};
use crate::schema::RelId;
use std::fmt;

/// The normal form of a relation (highest satisfied).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NormalForm {
    /// First normal form only (atomic values — always granted here,
    /// the relational substrate cannot express non-atomic values).
    First,
    /// Second normal form: no partial dependency of a non-prime
    /// attribute on a candidate key.
    Second,
    /// Third normal form: for every nontrivial `X → a`, `X` is a
    /// superkey or `a` is prime.
    Third,
    /// Boyce–Codd: for every nontrivial `X → a`, `X` is a superkey.
    BoyceCodd,
}

impl fmt::Display for NormalForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NormalForm::First => "1NF",
            NormalForm::Second => "2NF",
            NormalForm::Third => "3NF",
            NormalForm::BoyceCodd => "BCNF",
        })
    }
}

/// A witness explaining why a relation fails a normal form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The form that fails.
    pub form: NormalForm,
    /// The offending dependency (canonicalized, singleton RHS).
    pub fd: Fd,
}

/// Analysis result for one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalFormReport {
    /// The highest normal form satisfied.
    pub form: NormalForm,
    /// Candidate keys used for the analysis.
    pub keys: Vec<AttrSet>,
    /// Violations of the next form up (empty for BCNF).
    pub violations: Vec<Violation>,
}

/// Decides whether the relation is in 2NF under `fds`.
///
/// 2NF fails iff some non-prime attribute depends on a *strict subset*
/// of some candidate key.
pub fn is_2nf(rel: RelId, universe: &AttrSet, fds: &[Fd]) -> bool {
    first_2nf_violation(rel, universe, fds).is_none()
}

fn first_2nf_violation(rel: RelId, universe: &AttrSet, fds: &[Fd]) -> Option<Fd> {
    let keys = candidate_keys(rel, universe, fds);
    let primes = prime_attributes(rel, universe, fds);
    for key in &keys {
        if key.len() <= 1 {
            continue;
        }
        // Enumerate strict non-empty subsets of the key.
        let members: Vec<_> = key.iter().collect();
        let n = members.len();
        for mask in 1u32..((1 << n) - 1) {
            let sub =
                AttrSet::from_iter_ids((0..n).filter(|i| mask & (1 << i) != 0).map(|i| members[i]));
            let cl = closure(&sub, fds);
            for a in cl.difference(&sub).iter() {
                if !primes.contains(a) && universe.contains(a) {
                    return Some(Fd::new(rel, sub.clone(), AttrSet::single(a)));
                }
            }
        }
    }
    None
}

/// Decides whether the relation is in 3NF under `fds`.
pub fn is_3nf(rel: RelId, universe: &AttrSet, fds: &[Fd]) -> bool {
    first_3nf_violation(rel, universe, fds).is_none()
}

fn first_3nf_violation(rel: RelId, universe: &AttrSet, fds: &[Fd]) -> Option<Fd> {
    let primes = prime_attributes(rel, universe, fds);
    for fd in minimal_cover(fds) {
        if !fd.lhs.is_subset(universe) || !fd.rhs.is_subset(universe) {
            continue;
        }
        // `minimal_cover` emits one RHS attribute per FD by
        // construction, so the iterator is never empty.
        #[allow(clippy::expect_used)]
        let a = fd
            .rhs
            .iter()
            .next()
            .expect("minimal cover has singleton RHS");
        if fd.lhs.contains(a) {
            continue;
        }
        if !is_superkey(&fd.lhs, universe, fds) && !primes.contains(a) {
            return Some(fd);
        }
    }
    None
}

/// Decides whether the relation is in BCNF under `fds`.
pub fn is_bcnf(rel: RelId, universe: &AttrSet, fds: &[Fd]) -> bool {
    first_bcnf_violation(rel, universe, fds).is_none()
}

fn first_bcnf_violation(_rel: RelId, universe: &AttrSet, fds: &[Fd]) -> Option<Fd> {
    for fd in minimal_cover(fds) {
        if !fd.lhs.is_subset(universe) || !fd.rhs.is_subset(universe) {
            continue;
        }
        // `minimal_cover` emits one RHS attribute per FD by
        // construction, so the iterator is never empty.
        #[allow(clippy::expect_used)]
        let a = fd
            .rhs
            .iter()
            .next()
            .expect("minimal cover has singleton RHS");
        if fd.lhs.contains(a) {
            continue;
        }
        if !is_superkey(&fd.lhs, universe, fds) {
            return Some(fd);
        }
    }
    None
}

/// Full analysis: highest form + violations of the next form up.
pub fn analyze(rel: RelId, universe: &AttrSet, fds: &[Fd]) -> NormalFormReport {
    let keys = candidate_keys(rel, universe, fds);
    let mut violations = Vec::new();
    let form = if let Some(fd) = first_2nf_violation(rel, universe, fds) {
        violations.push(Violation {
            form: NormalForm::Second,
            fd,
        });
        NormalForm::First
    } else if let Some(fd) = first_3nf_violation(rel, universe, fds) {
        violations.push(Violation {
            form: NormalForm::Third,
            fd,
        });
        NormalForm::Second
    } else if let Some(fd) = first_bcnf_violation(rel, universe, fds) {
        violations.push(Violation {
            form: NormalForm::BoyceCodd,
            fd,
        });
        NormalForm::Third
    } else {
        NormalForm::BoyceCodd
    };
    NormalFormReport {
        form,
        keys,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: RelId = RelId(0);

    fn s(ids: &[u16]) -> AttrSet {
        AttrSet::from_indices(ids.iter().copied())
    }

    fn fd(lhs: &[u16], rhs: &[u16]) -> Fd {
        Fd::new(R, s(lhs), s(rhs))
    }

    #[test]
    fn assignment_like_relation_is_1nf() {
        // Assignment(emp, dep, proj, date, project-name):
        // key {emp,dep,proj}; proj -> project-name is a partial
        // dependency of a non-prime attribute => 1NF.
        let universe = s(&[0, 1, 2, 3, 4]);
        let fds = vec![fd(&[0, 1, 2], &[3, 4]), fd(&[2], &[4])];
        let rep = analyze(R, &universe, &fds);
        assert_eq!(rep.form, NormalForm::First);
        assert_eq!(rep.violations[0].form, NormalForm::Second);
    }

    #[test]
    fn department_like_relation_is_2nf() {
        // Department(dep, emp, skill, location, proj): key {dep};
        // emp -> skill, proj is a transitive dependency => 2NF not 3NF.
        let universe = s(&[0, 1, 2, 3, 4]);
        let fds = vec![fd(&[0], &[1, 2, 3, 4]), fd(&[1], &[2, 4])];
        let rep = analyze(R, &universe, &fds);
        assert_eq!(rep.form, NormalForm::Second);
        assert_eq!(rep.violations[0].form, NormalForm::Third);
    }

    #[test]
    fn person_with_zip_state_is_2nf() {
        // Person(id, name, street, number, zip, state): key {id};
        // zip -> state transitive => 2NF.
        let universe = s(&[0, 1, 2, 3, 4, 5]);
        let fds = vec![fd(&[0], &[1, 2, 3, 4, 5]), fd(&[4], &[5])];
        let rep = analyze(R, &universe, &fds);
        assert_eq!(rep.form, NormalForm::Second);
    }

    #[test]
    fn clean_relation_is_bcnf() {
        let universe = s(&[0, 1, 2]);
        let fds = vec![fd(&[0], &[1, 2])];
        let rep = analyze(R, &universe, &fds);
        assert_eq!(rep.form, NormalForm::BoyceCodd);
        assert!(rep.violations.is_empty());
        assert_eq!(rep.keys, vec![s(&[0])]);
    }

    #[test]
    fn third_but_not_bcnf() {
        // ab -> c, c -> b: 3NF (b is prime) but not BCNF (c not superkey).
        let universe = s(&[0, 1, 2]);
        let fds = vec![fd(&[0, 1], &[2]), fd(&[2], &[1])];
        assert!(is_3nf(R, &universe, &fds));
        assert!(!is_bcnf(R, &universe, &fds));
        let rep = analyze(R, &universe, &fds);
        assert_eq!(rep.form, NormalForm::Third);
        assert_eq!(rep.violations[0].form, NormalForm::BoyceCodd);
    }

    #[test]
    fn no_fds_is_bcnf() {
        let rep = analyze(R, &s(&[0, 1]), &[]);
        assert_eq!(rep.form, NormalForm::BoyceCodd);
    }

    #[test]
    fn display_names() {
        assert_eq!(NormalForm::First.to_string(), "1NF");
        assert_eq!(NormalForm::BoyceCodd.to_string(), "BCNF");
    }

    #[test]
    fn ordering_of_forms() {
        assert!(NormalForm::First < NormalForm::Second);
        assert!(NormalForm::Third < NormalForm::BoyceCodd);
    }
}
