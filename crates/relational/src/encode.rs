//! Dictionary-encoded columns: integer-code kernels for `‖·‖` counting,
//! joins, and partitions.
//!
//! Every statistic the paper's algorithms consume — distinct
//! projections for the three IND-Discovery cardinalities, LHS groups
//! for the `A → b` extension tests, stripped partitions for the mining
//! baselines — reduces to hashing and comparing projected tuples. The
//! `Value`-based primitives in [`crate::counting`] and
//! [`crate::partitions`] pay for that with a heap-allocated
//! `Vec<Value>` clone per row. This module removes that cost: each
//! column's values are interned once into dense `u32` codes
//! (first-occurrence order, with **code 0 reserved for `NULL`**), and
//! every kernel afterwards runs on plain integers hashed with the
//! cheap [`crate::fasthash`] scheme.
//!
//! The unit of encoding is the **column** ([`ColumnDict`]), not the
//! table: a probe that touches two attributes of a 13-column relation
//! pays for exactly two dictionary builds. The kernels are free
//! functions over `&[&ColumnDict]` slices, so callers can mix columns
//! cached at different times ([`crate::stats::StatsEngine`] caches one
//! dictionary per `(relation, attribute)` generation). [`DictTable`]
//! bundles one `Arc<ColumnDict>` per attribute for whole-table
//! consumers (TANE, SPIDER, key discovery) and forwards every kernel.
//!
//! Consequences of the encoding:
//!
//! * a unary `COUNT(DISTINCT a)` is the dictionary cardinality — `O(1)`
//!   after the build;
//! * a unary stripped partition is an array-bucket pass over the code
//!   domain, no hashing at all;
//! * a two-attribute projection key packs into a single `u64`
//!   (`hi << 32 | lo`), wider ones into a `Box<[u32]>` — no `Value`
//!   clones on any hot path;
//! * join intersections translate left codes to right codes through a
//!   per-position lookup table (codes are column-local), then probe
//!   integer sets.
//!
//! NULL conventions are preserved exactly: the SQL kernels
//! ([`count_distinct_cols`], [`distinct_codes_cols`],
//! [`fd_holds_cols`], [`lhs_groups_cols`]) skip rows whose projection
//! touches code 0, while the mining kernels ([`partition1_col`],
//! [`partition_cols`]) treat code 0 as an ordinary value equal to
//! itself, mirroring [`crate::partitions`]. `NaN` floats intern
//! through [`crate::value::OrdF64`]'s total order, so two NaNs with
//! the same payload share a code exactly when the `Value` kernels
//! consider them equal.
//!
//! A `ColumnDict` is immutable after [`ColumnDict::build`]; sharing
//! one read-only across [`crate::par::par_map`] workers is safe
//! (`Sync` by construction, no interior mutability). Lifecycle
//! management — building once per table generation and invalidating on
//! mutation — lives in [`crate::stats::StatsEngine`].

use crate::attr::AttrId;
use crate::counting::JoinStats;
use crate::fasthash::{FxHashMap, FxHashSet};
use crate::partitions::StrippedPartition;
use crate::sketch::ColumnSketch;
use crate::table::{ProjKey, Table};
use crate::value::Value;
use std::collections::hash_map::Entry;
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

/// The NULL sentinel code: row positions holding SQL `NULL` encode to
/// 0 in every [`ColumnDict`]; real values start at 1.
pub const NULL_CODE: u32 = 0;

/// One column's dictionary: per-row dense codes plus both decode
/// (code → value) and encode (value → code) directions.
///
/// Equality compares every *data* field — two dictionaries are equal
/// iff they were built from the same cell sequence (codes are assigned
/// in first-occurrence order, so the decode table is canonical), which
/// is what the streaming-vs-materialized differential tests pin. The
/// lazily attached sketch is a pure derivation of those fields and is
/// excluded from equality.
#[derive(Debug, Clone, Default)]
pub struct ColumnDict {
    /// Per-row codes; `codes[i] == NULL_CODE` iff row `i` is NULL.
    codes: Vec<u32>,
    /// Decode table: `values[(c - 1) as usize]` is the value of code
    /// `c ≥ 1`. Codes are assigned in first-occurrence order.
    values: Vec<Value>,
    /// Encode table (no entry for NULL).
    index: FxHashMap<Value, u32>,
    /// Number of NULL rows.
    nulls: usize,
    /// Per-code occurrence counts: `counts[c]` is how many rows carry
    /// code `c` (`counts[0]` = NULL rows). Maintained by the interning
    /// loop, so the counting-sort kernels skip their sizes pass.
    counts: Vec<u64>,
    /// Lazily built column sketch ([`ColumnDict::sketch`]); `None`
    /// once initialized means the dictionary is not sketchable (counts
    /// invariant broken or ghost codes present).
    sketch: OnceLock<Option<Arc<ColumnSketch>>>,
}

impl PartialEq for ColumnDict {
    fn eq(&self, other: &Self) -> bool {
        self.codes == other.codes
            && self.values == other.values
            && self.index == other.index
            && self.nulls == other.nulls
            && self.counts == other.counts
    }
}

/// Incremental column interner: the streaming half of
/// [`ColumnDict::build`].
///
/// Chunked ingest ([`crate::csv`] → [`crate::pages`]) cannot hand a
/// whole column slice to `build`; it interns one cell at a time as
/// records arrive and appends the resulting codes straight to a spill
/// file. The builder carries exactly the state `build`'s loop carries —
/// decode/encode tables, NULL and per-code counts — so
/// [`DictBuilder::finish_slim`] yields a dictionary byte-identical to
/// `build(column).slim()` for the same cell sequence.
#[derive(Debug, Default)]
pub struct DictBuilder {
    values: Vec<Value>,
    index: FxHashMap<Value, u32>,
    nulls: usize,
    counts: Vec<u64>,
    rows: usize,
}

impl DictBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        DictBuilder {
            counts: vec![0],
            ..DictBuilder::default()
        }
    }

    /// An empty builder presized for roughly `rows` incoming cells.
    pub fn with_row_capacity(rows: usize) -> Self {
        DictBuilder {
            // Worst case (all-distinct key columns) is common enough in
            // the paper's workloads to pre-size for; low-cardinality
            // columns briefly over-reserve and release on drop.
            index: FxHashMap::with_capacity_and_hasher(rows / 2, Default::default()),
            counts: vec![0],
            ..DictBuilder::default()
        }
    }

    /// Interns one cell, returning its code ([`NULL_CODE`] for NULL).
    /// Clones `v` only on first occurrence.
    #[inline]
    pub fn intern(&mut self, v: &Value) -> u32 {
        self.rows += 1;
        if v.is_null() {
            self.nulls += 1;
            self.counts[NULL_CODE as usize] += 1;
            return NULL_CODE;
        }
        let next = self.values.len() as u32 + 1;
        let code = match self.index.entry(v.clone()) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                self.values.push(v.clone());
                self.counts.push(0);
                *e.insert(next)
            }
        };
        self.counts[code as usize] += 1;
        code
    }

    /// Number of cells interned so far.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of distinct non-NULL values interned so far.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Finishes into a codes-free (slim) dictionary — the resident
    /// half of a spilled column (see [`ColumnDict::slim`]).
    pub fn finish_slim(self) -> ColumnDict {
        ColumnDict {
            codes: Vec::new(),
            values: self.values,
            index: self.index,
            nulls: self.nulls,
            counts: self.counts,
            sketch: OnceLock::new(),
        }
    }
}

impl ColumnDict {
    /// Interns one column. The only `Value` clones are one per
    /// *distinct* value (into the decode and encode tables), never per
    /// row.
    pub fn build(column: &[Value]) -> Self {
        let mut b = DictBuilder::with_row_capacity(column.len());
        let mut codes = Vec::with_capacity(column.len());
        for v in column {
            codes.push(b.intern(v));
        }
        let mut dict = b.finish_slim();
        dict.codes = codes;
        dict
    }

    /// Number of distinct non-NULL values — the unary
    /// `COUNT(DISTINCT ·)` in `O(1)`.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Does the column contain any NULL?
    #[inline]
    pub fn has_null(&self) -> bool {
        self.nulls > 0
    }

    /// Number of NULL rows.
    #[inline]
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// The per-row code slice (0 = NULL).
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of rows the column was built from.
    #[inline]
    pub fn rows(&self) -> usize {
        self.codes.len()
    }

    /// The code of `v` in this column, or [`NULL_CODE`] when `v` is
    /// NULL or absent from the column.
    #[inline]
    pub fn code_of(&self, v: &Value) -> u32 {
        self.index.get(v).copied().unwrap_or(NULL_CODE)
    }

    /// Decodes a non-NULL code back into its value.
    #[inline]
    pub fn value_of(&self, code: u32) -> Option<&Value> {
        if code == NULL_CODE {
            None
        } else {
            self.values.get(code as usize - 1)
        }
    }

    /// The distinct non-NULL values, in first-occurrence (code) order.
    #[inline]
    pub fn distinct_values(&self) -> &[Value] {
        &self.values
    }

    /// Per-code occurrence counts: `counts()[c]` is how many rows of
    /// the source column carry code `c`, with `counts()[0]` the NULL
    /// count. Length is `cardinality() + 1` for any dictionary built
    /// through [`ColumnDict::build`] / [`DictBuilder`]; kernels treat
    /// any other length as "counts unavailable" and fall back to a
    /// counting pass.
    #[inline]
    pub fn code_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Reassembles a slim dictionary from its serialized parts — the
    /// spill-cache load path ([`crate::pages`]). The encode index is
    /// rebuilt from the decode table; `counts` must follow the
    /// [`ColumnDict::code_counts`] convention.
    pub fn from_parts(values: Vec<Value>, nulls: usize, counts: Vec<u64>) -> ColumnDict {
        let mut index = FxHashMap::with_capacity_and_hasher(values.len(), Default::default());
        for (i, v) in values.iter().enumerate() {
            index.insert(v.clone(), i as u32 + 1);
        }
        ColumnDict {
            codes: Vec::new(),
            values,
            index,
            nulls,
            counts,
            sketch: OnceLock::new(),
        }
    }

    /// [`ColumnDict::from_parts`] with a sketch preseeded from
    /// persisted hashes — the spill-cache load path, which would
    /// otherwise rehash every distinct value to rebuild what the
    /// ingest pass already computed. The hashes must be the
    /// [`ColumnSketch::hashes`] of this exact value sequence; callers
    /// (the spill decoder) verify provenance via the entry checksum.
    pub fn from_parts_with_sketch(
        values: Vec<Value>,
        nulls: usize,
        counts: Vec<u64>,
        hashes: Vec<u64>,
    ) -> ColumnDict {
        let rows = counts.iter().sum::<u64>() as usize;
        let dict = ColumnDict::from_parts(values, nulls, counts);
        let _ = dict.sketch.set(Some(Arc::new(ColumnSketch::from_hashes(
            rows, nulls, hashes,
        ))));
        dict
    }

    /// The column's sketch, built on first request (O(cardinality))
    /// and cached. `None` when the dictionary cannot vouch for
    /// exactness: the fused-counts invariant is broken (hand-assembled
    /// dictionary) or a removal left ghost codes — in both cases
    /// `cardinality()` may over-count the live column and any pruning
    /// proof would be unsound, so no sketch is offered at all.
    pub fn sketch(&self) -> Option<Arc<ColumnSketch>> {
        self.sketch
            .get_or_init(|| {
                if self.counts.len() != self.values.len() + 1 {
                    return None;
                }
                if self.counts.iter().skip(1).any(|&c| c == 0) {
                    return None;
                }
                let rows = self.counts.iter().sum::<u64>() as usize;
                Some(Arc::new(ColumnSketch::build(
                    &self.values,
                    self.nulls,
                    rows,
                )))
            })
            .clone()
    }

    /// The sketch if one was already built or preseeded — never
    /// triggers a build (spill serialization uses this to persist
    /// exactly what ingest computed).
    pub fn sketch_if_built(&self) -> Option<Arc<ColumnSketch>> {
        self.sketch.get().cloned().flatten()
    }

    /// A codes-free copy: the decode/encode tables and the NULL count
    /// survive, the per-row code vector is dropped. This is the
    /// resident half of the paged store ([`crate::pages`]) — every
    /// kernel that reads only `cardinality` / `code_of` /
    /// `distinct_values` / `value_of` (notably [`code_translation`],
    /// [`intersect_count`] and [`decode_set_cols`]) works on a slim
    /// dictionary unchanged, while per-row codes stream from disk.
    /// `rows()` reports 0 on the copy; the paged column tracks the
    /// true row count itself.
    pub fn slim(&self) -> ColumnDict {
        ColumnDict {
            codes: Vec::new(),
            values: self.values.clone(),
            index: self.index.clone(),
            nulls: self.nulls,
            counts: self.counts.clone(),
            // A sketch summarizes the value set, which slimming keeps.
            sketch: self.sketch.clone(),
        }
    }

    /// Rebuilds a full dictionary from this (slim) one plus a per-row
    /// code vector — the paged store's rehydration path for consumers
    /// that need random access to codes (the batch SQL executor's
    /// `column_dict()` seam).
    pub fn rehydrate(&self, codes: Vec<u32>) -> ColumnDict {
        ColumnDict {
            codes,
            values: self.values.clone(),
            index: self.index.clone(),
            nulls: self.nulls,
            counts: self.counts.clone(),
            sketch: self.sketch.clone(),
        }
    }

    /// Extends the dictionary with appended cells, interning exactly
    /// as [`ColumnDict::build`] would — codes stay first-occurrence
    /// canonical, so the result **equals** a rebuild over the
    /// concatenated column. This is the append half of delta
    /// maintenance ([`crate::delta`]); it requires a full (non-slim)
    /// dictionary and clones a value only on first occurrence.
    pub fn append_values(&mut self, appended: &[Value]) {
        debug_assert_eq!(
            self.codes.len() as u64,
            self.counts.iter().sum::<u64>(),
            "append_values needs a full (non-slim) dictionary"
        );
        // The value set is about to change: drop the derived sketch.
        self.sketch.take();
        self.codes.reserve(appended.len());
        for v in appended {
            if v.is_null() {
                self.nulls += 1;
                self.counts[NULL_CODE as usize] += 1;
                self.codes.push(NULL_CODE);
                continue;
            }
            let code = match self.index.get(v) {
                Some(&c) => c,
                None => {
                    let next = self.values.len() as u32 + 1;
                    self.values.push(v.clone());
                    self.index.insert(v.clone(), next);
                    self.counts.push(0);
                    next
                }
            };
            self.counts[code as usize] += 1;
            self.codes.push(code);
        }
    }

    /// Removes the rows at `sorted` (strictly ascending), decrementing
    /// per-code counts. Returns `true` when the result still equals a
    /// rebuild over the surviving column — `false` when some value's
    /// count reached zero, leaving a *ghost* code that a rebuild would
    /// never assign (first-occurrence order diverges and
    /// `cardinality()` over-counts); the caller must then evict and
    /// rebuild instead of keeping this dictionary.
    pub fn remove_rows(&mut self, sorted: &[usize]) -> bool {
        self.sketch.take();
        for &i in sorted {
            let code = self.codes[i] as usize;
            self.counts[code] -= 1;
            if code == NULL_CODE as usize {
                self.nulls -= 1;
            }
        }
        let mut next_del = 0usize;
        let mut write = 0usize;
        for read in 0..self.codes.len() {
            if next_del < sorted.len() && sorted[next_del] == read {
                next_del += 1;
                continue;
            }
            self.codes[write] = self.codes[read];
            write += 1;
        }
        self.codes.truncate(write);
        self.counts.iter().skip(1).all(|&c| c > 0)
    }
}

/// The set of distinct, fully non-NULL projected code tuples of one
/// side — the encoded counterpart of [`Table::distinct_projection`].
///
/// The representation is chosen by projection arity:
/// * 1 attribute: codes are assigned first-occurrence, so the distinct
///   code set is exactly `1..=cardinality` — nothing to materialize;
/// * 2 attributes: keys pack into a `u64` (`hi << 32 | lo`);
/// * otherwise: boxed `u32` slices (also covers the degenerate empty
///   projection, whose only possible tuple is `[]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodedSet {
    /// Unary projection: every code `1..=card` occurs.
    Unary {
        /// The column cardinality (= set size).
        card: u32,
    },
    /// Two-attribute projection with packed `u64` keys.
    Packed(FxHashSet<u64>),
    /// Any other arity, keyed by the full code tuple.
    Wide(FxHashSet<Box<[u32]>>),
}

impl EncodedSet {
    /// Number of distinct non-NULL projected tuples.
    pub fn len(&self) -> usize {
        match self {
            EncodedSet::Unary { card } => *card as usize,
            EncodedSet::Packed(s) => s.len(),
            EncodedSet::Wide(s) => s.len(),
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maintains this set across a row append: inserts the projected
    /// code tuples of rows `old_rows..new_rows` of `cols` (the
    /// **already-maintained** dictionaries covering the full
    /// post-append column). Equals `distinct_codes_cols` over the
    /// whole column — the delta layer's append path for cached
    /// distinct sets. Deletes are not maintainable here (no
    /// multiplicities); callers evict instead.
    pub fn append_rows(&mut self, cols: &[&ColumnDict], old_rows: usize, new_rows: usize) {
        match self {
            EncodedSet::Unary { card } => {
                // Canonical interning means codes 1..=cardinality all
                // occur; the maintained dictionary already knows the
                // new cardinality.
                *card = cols[0].cardinality() as u32;
            }
            EncodedSet::Packed(set) => {
                let (ca, cb) = (cols[0].codes(), cols[1].codes());
                for i in old_rows..new_rows {
                    let (x, y) = (ca[i], cb[i]);
                    if x != NULL_CODE && y != NULL_CODE {
                        set.insert(pack2(x, y));
                    }
                }
            }
            EncodedSet::Wide(set) => {
                'rows: for i in old_rows..new_rows {
                    let mut key = Vec::with_capacity(cols.len());
                    for c in cols {
                        let code = c.codes()[i];
                        if code == NULL_CODE {
                            continue 'rows;
                        }
                        key.push(code);
                    }
                    if !set.contains(key.as_slice()) {
                        set.insert(key.into_boxed_slice());
                    }
                }
            }
        }
    }
}

#[inline]
fn pack2(hi: u32, lo: u32) -> u64 {
    (u64::from(hi) << 32) | u64::from(lo)
}

// ---- column-slice kernels -------------------------------------------
//
// Each kernel takes the projected columns as `&[&ColumnDict]`
// (repeats allowed — a projection list can name a column twice) plus
// the table's row count, which disambiguates the empty projection.

/// `‖r[cols]‖` under SQL semantics (rows with a NULL among the
/// projection dropped) — the paper's cardinality query, matching
/// [`Table::count_distinct`] exactly.
pub fn count_distinct_cols(cols: &[&ColumnDict], rows: usize) -> usize {
    match cols {
        [c] => c.cardinality(),
        [ca, cb] => {
            // Bitset fast path: when the code-domain product is small,
            // pair counting is a dense bit array instead of a hash set.
            let domain = ca.cardinality() as u64 * cb.cardinality() as u64;
            const BITSET_MAX: u64 = 1 << 22; // 512 KiB of bits
            if domain > 0 && domain <= BITSET_MAX {
                let width = cb.cardinality() as u64;
                let mut bits = vec![0u64; (domain as usize).div_ceil(64)];
                let mut count = 0usize;
                for (&x, &y) in ca.codes().iter().zip(cb.codes()) {
                    if x == NULL_CODE || y == NULL_CODE {
                        continue;
                    }
                    let idx = (u64::from(x) - 1) * width + (u64::from(y) - 1);
                    let (w, m) = ((idx / 64) as usize, 1u64 << (idx % 64));
                    if bits[w] & m == 0 {
                        bits[w] |= m;
                        count += 1;
                    }
                }
                count
            } else {
                distinct_codes_cols(cols, rows).len()
            }
        }
        _ => distinct_codes_cols(cols, rows).len(),
    }
}

/// The distinct non-NULL projected code tuples (SQL semantics) —
/// decode with [`decode_set_cols`] to recover the exact
/// [`Table::distinct_projection`] result.
pub fn distinct_codes_cols(cols: &[&ColumnDict], rows: usize) -> EncodedSet {
    match cols {
        [] => {
            // π_∅ is {[]} on a non-empty table, {} on an empty one
            // (matching the Value-based reference).
            let mut s: FxHashSet<Box<[u32]>> = FxHashSet::default();
            if rows > 0 {
                s.insert(Box::from([]));
            }
            EncodedSet::Wide(s)
        }
        [c] => EncodedSet::Unary {
            card: c.cardinality() as u32,
        },
        [ca, cb] => {
            let cap = (ca.cardinality() as u64 * cb.cardinality() as u64).min(rows as u64) as usize;
            let mut set: FxHashSet<u64> =
                FxHashSet::with_capacity_and_hasher(cap, Default::default());
            for (&x, &y) in ca.codes().iter().zip(cb.codes()) {
                if x != NULL_CODE && y != NULL_CODE {
                    set.insert(pack2(x, y));
                }
            }
            EncodedSet::Packed(set)
        }
        _ => {
            let codes: Vec<&[u32]> = cols.iter().map(|c| c.codes()).collect();
            let mut set: FxHashSet<Box<[u32]>> = FxHashSet::default();
            let mut scratch: Vec<u32> = vec![0; cols.len()];
            'rows: for i in 0..rows {
                for (s, c) in scratch.iter_mut().zip(&codes) {
                    let code = c[i];
                    if code == NULL_CODE {
                        continue 'rows;
                    }
                    *s = code;
                }
                // Probe by slice first so duplicates allocate nothing.
                if !set.contains(scratch.as_slice()) {
                    set.insert(scratch.clone().into_boxed_slice());
                }
            }
            EncodedSet::Wide(set)
        }
    }
}

/// Decodes an [`EncodedSet`] produced from `cols` back into `Value`
/// tuples; equals [`Table::distinct_projection`].
pub fn decode_set_cols(cols: &[&ColumnDict], set: &EncodedSet) -> HashSet<ProjKey> {
    let decode_one = |col: &ColumnDict, code: u32| -> Value {
        col.value_of(code).cloned().unwrap_or(Value::Null)
    };
    match set {
        EncodedSet::Unary { card } => match cols {
            [c] => (1..=*card).map(|code| vec![decode_one(c, code)]).collect(),
            _ => HashSet::new(),
        },
        EncodedSet::Packed(s) => match cols {
            [ca, cb] => s
                .iter()
                .map(|&k| vec![decode_one(ca, (k >> 32) as u32), decode_one(cb, k as u32)])
                .collect(),
            _ => HashSet::new(),
        },
        EncodedSet::Wide(s) => s
            .iter()
            .map(|key| {
                cols.iter()
                    .zip(key.iter())
                    .map(|(c, &code)| decode_one(c, code))
                    .collect()
            })
            .collect(),
    }
}

/// Occurrence counts for `col`'s code domain — borrowed from the
/// dictionary's fused counts when the invariant holds, recounted from
/// the code vector otherwise (hand-assembled dictionaries).
fn counts_of(col: &ColumnDict) -> std::borrow::Cow<'_, [u64]> {
    let domain = col.cardinality() + 1;
    if col.code_counts().len() == domain {
        return std::borrow::Cow::Borrowed(col.code_counts());
    }
    let mut counts: Vec<u64> = vec![0; domain];
    for &c in col.codes() {
        counts[c as usize] += 1;
    }
    std::borrow::Cow::Owned(counts)
}

/// The unary stripped partition `π_attr` (mining convention:
/// NULL = NULL) via array buckets over the code domain — no hashing.
/// Equals [`StrippedPartition::for_attribute`].
pub fn partition1_col(col: &ColumnDict) -> StrippedPartition {
    // The sizes come straight from the dictionary (fused into the
    // interning loop), so stripped singleton classes — the vast
    // majority on key-like columns — never allocate anything and the
    // kernel is a single fill pass.
    let domain = col.cardinality() + 1;
    let counts = counts_of(col);
    // slots[c] is the class of code c, or MAX for stripped codes
    // (count < 2; code 0 = the NULL class, kept like any other).
    let mut slots: Vec<u32> = vec![u32::MAX; domain];
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for (c, &n) in counts.iter().enumerate() {
        if n >= 2 {
            slots[c] = classes.len() as u32;
            classes.push(Vec::with_capacity(n as usize));
        }
    }
    for (i, &c) in col.codes().iter().enumerate() {
        let s = slots[c as usize];
        if s != u32::MAX {
            classes[s as usize].push(i);
        }
    }
    // Rows were pushed in ascending order; only the outer order needs
    // normalizing to match `from_groups`.
    classes.sort();
    StrippedPartition {
        classes,
        rows: col.rows(),
    }
}

/// The stripped partition over `cols` (NULL = NULL), built in one
/// grouping pass over packed code keys. Equals
/// [`StrippedPartition::for_attrs`]: grouping directly by the full
/// tuple yields the same classes as TANE's chained products, and both
/// normalize class order identically.
pub fn partition_cols(cols: &[&ColumnDict], rows: usize) -> StrippedPartition {
    match cols {
        [] => StrippedPartition::single_class(rows),
        [c] => partition1_col(c),
        [ca, cb] => {
            let (ca, cb) = (ca.codes(), cb.codes());
            let mut groups: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
            for i in 0..rows {
                groups.entry(pack2(ca[i], cb[i])).or_default().push(i);
            }
            strip(groups.into_values(), rows)
        }
        _ => {
            let codes: Vec<&[u32]> = cols.iter().map(|c| c.codes()).collect();
            let mut groups: FxHashMap<Box<[u32]>, Vec<usize>> = FxHashMap::default();
            let mut scratch: Vec<u32> = vec![0; cols.len()];
            for i in 0..rows {
                for (s, c) in scratch.iter_mut().zip(&codes) {
                    *s = c[i];
                }
                if let Some(g) = groups.get_mut(scratch.as_slice()) {
                    g.push(i);
                } else {
                    groups.insert(scratch.clone().into_boxed_slice(), vec![i]);
                }
            }
            strip(groups.into_values(), rows)
        }
    }
}

/// Row-index groups (size ≥ 2) agreeing on `cols` under SQL semantics
/// — rows with a NULL among the projection are skipped.
/// Deterministically ordered; the encoded counterpart of the LHS-group
/// builder behind `StatsEngine::fd_holds`.
pub fn lhs_groups_cols(cols: &[&ColumnDict], rows: usize) -> Vec<Vec<usize>> {
    match cols {
        [] => {
            // No attributes, no NULLs to skip: all rows agree.
            if rows >= 2 {
                vec![(0..rows).collect()]
            } else {
                Vec::new()
            }
        }
        [col] => {
            // Sizes from the dictionary's fused counts (as in
            // [`partition1_col`]): singleton codes — the common case on
            // key-like columns — never allocate a group.
            let counts = counts_of(col);
            let mut slots: Vec<u32> = vec![u32::MAX; counts.len()];
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for (c, &n) in counts.iter().enumerate() {
                if c != NULL_CODE as usize && n >= 2 {
                    slots[c] = groups.len() as u32;
                    groups.push(Vec::with_capacity(n as usize));
                }
            }
            for (i, &c) in col.codes().iter().enumerate() {
                let s = slots[c as usize];
                if c != NULL_CODE && s != u32::MAX {
                    groups[s as usize].push(i);
                }
            }
            groups.sort();
            groups
        }
        [ca, cb] => {
            let (ca, cb) = (ca.codes(), cb.codes());
            let mut map: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
            for i in 0..rows {
                if ca[i] != NULL_CODE && cb[i] != NULL_CODE {
                    map.entry(pack2(ca[i], cb[i])).or_default().push(i);
                }
            }
            let mut groups: Vec<Vec<usize>> = map.into_values().filter(|g| g.len() >= 2).collect();
            groups.sort();
            groups
        }
        _ => {
            let codes: Vec<&[u32]> = cols.iter().map(|c| c.codes()).collect();
            let mut map: FxHashMap<Box<[u32]>, Vec<usize>> = FxHashMap::default();
            let mut scratch: Vec<u32> = vec![0; cols.len()];
            'rows: for i in 0..rows {
                for (s, c) in scratch.iter_mut().zip(&codes) {
                    let code = c[i];
                    if code == NULL_CODE {
                        continue 'rows;
                    }
                    *s = code;
                }
                if let Some(g) = map.get_mut(scratch.as_slice()) {
                    g.push(i);
                } else {
                    map.insert(scratch.clone().into_boxed_slice(), vec![i]);
                }
            }
            let mut groups: Vec<Vec<usize>> = map.into_values().filter(|g| g.len() >= 2).collect();
            groups.sort();
            groups
        }
    }
}

/// Does `lhs → rhs` hold under SQL semantics (NULL-LHS rows skipped)?
/// Single pass, first-witness comparison on codes; same answer as
/// `Database::fd_holds` — structural `Value` equality coincides with
/// code equality because both sides intern through the same `Eq`.
pub fn fd_holds_cols(lhs: &[&ColumnDict], rhs: &[&ColumnDict], rows: usize) -> bool {
    let rcols: Vec<&[u32]> = rhs.iter().map(|c| c.codes()).collect();
    let agree = |i: usize, j: usize| rcols.iter().all(|c| c[i] == c[j]);
    match lhs {
        [] => {
            // Empty LHS: every row must agree on the RHS.
            (1..rows).all(|i| agree(0, i))
        }
        [col] => {
            let mut first: Vec<usize> = vec![usize::MAX; col.cardinality() + 1];
            for (i, &c) in col.codes().iter().enumerate() {
                if c == NULL_CODE {
                    continue;
                }
                let f = first[c as usize];
                if f == usize::MAX {
                    first[c as usize] = i;
                } else if !agree(i, f) {
                    return false;
                }
            }
            true
        }
        [ca, cb] => {
            let (ca, cb) = (ca.codes(), cb.codes());
            let mut first: FxHashMap<u64, usize> = FxHashMap::default();
            for i in 0..rows {
                if ca[i] == NULL_CODE || cb[i] == NULL_CODE {
                    continue;
                }
                match first.entry(pack2(ca[i], cb[i])) {
                    Entry::Occupied(e) => {
                        if !agree(i, *e.get()) {
                            return false;
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(i);
                    }
                }
            }
            true
        }
        _ => {
            let codes: Vec<&[u32]> = lhs.iter().map(|c| c.codes()).collect();
            let mut first: FxHashMap<Box<[u32]>, usize> = FxHashMap::default();
            let mut scratch: Vec<u32> = vec![0; lhs.len()];
            'rows: for i in 0..rows {
                for (s, c) in scratch.iter_mut().zip(&codes) {
                    let code = c[i];
                    if code == NULL_CODE {
                        continue 'rows;
                    }
                    *s = code;
                }
                if let Some(&f) = first.get(scratch.as_slice()) {
                    if !agree(i, f) {
                        return false;
                    }
                } else {
                    first.insert(scratch.clone().into_boxed_slice(), i);
                }
            }
            true
        }
    }
}

/// A fully dictionary-encoded table: one shared [`ColumnDict`] per
/// attribute (cheap to assemble from per-column caches — see
/// [`crate::stats::StatsEngine::dict`]).
///
/// Immutable and `Sync` after construction, so parallel workers share
/// the codes read-only. Whole-table consumers (TANE, SPIDER, key
/// discovery, `check_encoded`) use this; per-projection consumers go
/// through the column-slice kernels directly.
#[derive(Debug, Clone, Default)]
pub struct DictTable {
    columns: Vec<Arc<ColumnDict>>,
    rows: usize,
}

impl DictTable {
    /// Encodes every column of `table`. One pass per column.
    pub fn build(table: &Table) -> Self {
        let columns = (0..table.arity())
            .map(|i| Arc::new(ColumnDict::build(table.column(AttrId(i as u16)))))
            .collect();
        DictTable {
            columns,
            rows: table.len(),
        }
    }

    /// Assembles a table view from already-built column dictionaries
    /// (all encoding the same `rows`-row table, in attribute order).
    pub fn from_columns(columns: Vec<Arc<ColumnDict>>, rows: usize) -> Self {
        debug_assert!(columns.iter().all(|c| c.rows() == rows));
        DictTable { columns, rows }
    }

    /// Number of rows of the encoded table.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// One column's dictionary.
    #[inline]
    pub fn column(&self, attr: AttrId) -> &ColumnDict {
        self.columns[attr.index()].as_ref()
    }

    /// The column dictionaries of `attrs`, hoisted once so row loops
    /// never re-walk the attribute lookup.
    fn cols(&self, attrs: &[AttrId]) -> Vec<&ColumnDict> {
        attrs.iter().map(|a| self.column(*a)).collect()
    }

    /// `‖r[attrs]‖` under SQL semantics; see [`count_distinct_cols`].
    pub fn count_distinct(&self, attrs: &[AttrId]) -> usize {
        count_distinct_cols(&self.cols(attrs), self.rows)
    }

    /// Distinct projected code tuples; see [`distinct_codes_cols`].
    pub fn distinct_codes(&self, attrs: &[AttrId]) -> EncodedSet {
        distinct_codes_cols(&self.cols(attrs), self.rows)
    }

    /// Decodes an [`EncodedSet`] from this table on `attrs`; see
    /// [`decode_set_cols`].
    pub fn decode_set(&self, attrs: &[AttrId], set: &EncodedSet) -> HashSet<ProjKey> {
        decode_set_cols(&self.cols(attrs), set)
    }

    /// Unary stripped partition; see [`partition1_col`].
    pub fn partition1(&self, attr: AttrId) -> StrippedPartition {
        partition1_col(self.column(attr))
    }

    /// Stripped partition over `attrs`; see [`partition_cols`].
    pub fn partition(&self, attrs: &[AttrId]) -> StrippedPartition {
        partition_cols(&self.cols(attrs), self.rows)
    }

    /// SQL-semantics LHS groups; see [`lhs_groups_cols`].
    pub fn lhs_groups(&self, attrs: &[AttrId]) -> Vec<Vec<usize>> {
        lhs_groups_cols(&self.cols(attrs), self.rows)
    }

    /// SQL-semantics FD check; see [`fd_holds_cols`].
    pub fn fd_holds(&self, lhs: &[AttrId], rhs: &[AttrId]) -> bool {
        fd_holds_cols(&self.cols(lhs), &self.cols(rhs), self.rows)
    }
}

/// `from_groups` twin for code-keyed grouping: strip singletons,
/// normalize ordering.
fn strip(groups: impl IntoIterator<Item = Vec<usize>>, rows: usize) -> StrippedPartition {
    let mut classes: Vec<Vec<usize>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
    // Rows were pushed in ascending order; classes arrive unsorted
    // from the map.
    classes.sort();
    StrippedPartition { classes, rows }
}

/// Per-position code translation `left code → right code`
/// ([`NULL_CODE`] when the left value does not occur on the right —
/// callers must treat a zero result as "no match", never as NULL
/// equality). Codes are column-local, so cross-table probes — the
/// intersection kernel here, and the batch SQL executor's hash-join
/// probes in `dbre-sql` — go through this table instead of re-hashing
/// `Value`s per tuple.
pub fn code_translation(left: &ColumnDict, right: &ColumnDict) -> Vec<u32> {
    let mut t = vec![NULL_CODE; left.cardinality() + 1];
    for (i, v) in left.distinct_values().iter().enumerate() {
        t[i + 1] = right.code_of(v);
    }
    t
}

/// `|π_L(left) ∩ π_R(right)|` — the `N_kl` of the paper — from
/// prebuilt encoded sets over the two sides' projected columns. The
/// sides must have equal arity (guaranteed by
/// [`crate::counting::EquiJoin`]); on a malformed pair the count falls
/// back to the decoded reference intersection.
pub fn intersect_count(
    lcols: &[&ColumnDict],
    lset: &EncodedSet,
    rcols: &[&ColumnDict],
    rset: &EncodedSet,
) -> usize {
    match (lcols, rcols, lset, rset) {
        ([lc], [rc], EncodedSet::Unary { .. }, EncodedSet::Unary { .. }) => {
            // Iterate the smaller dictionary, probe the larger's index.
            let (small, large) = if lc.cardinality() <= rc.cardinality() {
                (lc, rc)
            } else {
                (rc, lc)
            };
            small
                .distinct_values()
                .iter()
                .filter(|v| large.code_of(v) != NULL_CODE)
                .count()
        }
        ([la, lb], [ra, rb], EncodedSet::Packed(ls), EncodedSet::Packed(rs)) => {
            // Iterate the smaller set; translate into the larger side's
            // code space per position, then probe.
            let translated_probe =
                |it: &FxHashSet<u64>, ta: Vec<u32>, tb: Vec<u32>, other: &FxHashSet<u64>| {
                    it.iter()
                        .filter(|&&k| {
                            let (x, y) = (ta[(k >> 32) as usize], tb[(k as u32) as usize]);
                            x != NULL_CODE && y != NULL_CODE && other.contains(&pack2(x, y))
                        })
                        .count()
                };
            if ls.len() <= rs.len() {
                translated_probe(ls, code_translation(la, ra), code_translation(lb, rb), rs)
            } else {
                translated_probe(rs, code_translation(ra, la), code_translation(rb, lb), ls)
            }
        }
        (_, _, EncodedSet::Wide(ls), EncodedSet::Wide(rs)) if lcols.len() == rcols.len() => {
            let probe_wide = |it: &FxHashSet<Box<[u32]>>,
                              xlats: Vec<Vec<u32>>,
                              other: &FxHashSet<Box<[u32]>>| {
                let mut scratch: Vec<u32> = vec![0; xlats.len()];
                it.iter()
                    .filter(|key| {
                        for ((s, &c), t) in scratch.iter_mut().zip(key.iter()).zip(&xlats) {
                            *s = t[c as usize];
                            if *s == NULL_CODE {
                                // The left value has no right-side code.
                                return false;
                            }
                        }
                        other.contains(scratch.as_slice())
                    })
                    .count()
            };
            if ls.len() <= rs.len() {
                let xlats = lcols
                    .iter()
                    .zip(rcols)
                    .map(|(l, r)| code_translation(l, r))
                    .collect();
                probe_wide(ls, xlats, rs)
            } else {
                let xlats = lcols
                    .iter()
                    .zip(rcols)
                    .map(|(l, r)| code_translation(r, l))
                    .collect();
                probe_wide(rs, xlats, ls)
            }
        }
        _ => {
            // Mismatched arity or representations: fall back to the
            // decoded reference intersection (always correct).
            let l = decode_set_cols(lcols, lset);
            let r = decode_set_cols(rcols, rset);
            let (small, large) = if l.len() <= r.len() {
                (&l, &r)
            } else {
                (&r, &l)
            };
            small.iter().filter(|k| large.contains(*k)).count()
        }
    }
}

/// The three IND-Discovery cardinalities for an encoded join, built
/// from scratch. Equals [`crate::counting::join_stats`].
pub fn join_stats_encoded(
    left: &DictTable,
    lattrs: &[AttrId],
    right: &DictTable,
    rattrs: &[AttrId],
) -> JoinStats {
    let lcols: Vec<&ColumnDict> = lattrs.iter().map(|a| left.column(*a)).collect();
    let rcols: Vec<&ColumnDict> = rattrs.iter().map(|a| right.column(*a)).collect();
    let lset = distinct_codes_cols(&lcols, left.rows());
    let rset = distinct_codes_cols(&rcols, right.rows());
    JoinStats {
        n_left: lset.len(),
        n_right: rset.len(),
        n_join: intersect_count(&lcols, &lset, &rcols, &rset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    fn sample() -> Table {
        // (x, y): (1,'a') (1,'a') (2,'b') (NULL,'c') (3,NULL)
        #[allow(clippy::unwrap_used)]
        Table::from_rows(
            2,
            vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Int(2), Value::str("b")],
                vec![Value::Null, Value::str("c")],
                vec![Value::Int(3), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn null_encodes_to_sentinel_and_values_to_dense_codes() {
        let t = sample();
        let d = DictTable::build(&t);
        assert_eq!(d.rows(), 5);
        assert_eq!(d.column(a(0)).codes(), &[1, 1, 2, 0, 3]);
        assert_eq!(d.column(a(1)).codes(), &[1, 1, 2, 3, 0]);
        assert_eq!(d.column(a(0)).cardinality(), 3);
        assert!(d.column(a(0)).has_null());
        assert_eq!(d.column(a(0)).null_count(), 1);
        assert_eq!(d.column(a(0)).value_of(1), Some(&Value::Int(1)));
        assert_eq!(d.column(a(0)).value_of(0), None);
        assert_eq!(d.column(a(0)).code_of(&Value::Int(2)), 2);
        assert_eq!(d.column(a(0)).code_of(&Value::Int(99)), NULL_CODE);
        assert_eq!(d.column(a(0)).code_of(&Value::Null), NULL_CODE);
    }

    #[test]
    fn count_distinct_matches_reference() {
        let t = sample();
        let d = DictTable::build(&t);
        for attrs in [
            vec![a(0)],
            vec![a(1)],
            vec![a(0), a(1)],
            vec![a(1), a(0)],
            vec![a(0), a(0)],
            vec![],
        ] {
            assert_eq!(
                d.count_distinct(&attrs),
                t.count_distinct(&attrs),
                "attrs {attrs:?}"
            );
        }
    }

    #[test]
    fn decode_recovers_reference_projection() {
        let t = sample();
        let d = DictTable::build(&t);
        for attrs in [vec![a(0)], vec![a(0), a(1)], vec![a(1), a(0), a(0)]] {
            let set = d.distinct_codes(&attrs);
            assert_eq!(
                d.decode_set(&attrs, &set),
                t.distinct_projection(&attrs),
                "attrs {attrs:?}"
            );
        }
    }

    #[test]
    fn partitions_match_reference() {
        let t = sample();
        let d = DictTable::build(&t);
        for attrs in [vec![a(0)], vec![a(1)], vec![a(0), a(1)], vec![]] {
            assert_eq!(
                d.partition(&attrs),
                StrippedPartition::for_attrs(&t, &attrs),
                "attrs {attrs:?}"
            );
        }
        assert_eq!(
            d.partition1(a(0)),
            StrippedPartition::for_attribute(&t, a(0))
        );
    }

    #[test]
    fn fd_holds_matches_sql_semantics() {
        // NULL-LHS rows skipped: x → y holds despite the NULL rows.
        #[allow(clippy::unwrap_used)]
        let t = Table::from_rows(
            2,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Null, Value::Int(1)],
                vec![Value::Null, Value::Int(2)],
                vec![Value::Int(2), Value::Int(10)],
            ],
        )
        .unwrap();
        let d = DictTable::build(&t);
        assert!(d.fd_holds(&[a(0)], &[a(1)]));
        // y = 10 maps to x ∈ {1, 2}.
        assert!(!d.fd_holds(&[a(1)], &[a(0)]));
        // Empty LHS: constant-column test.
        assert!(!d.fd_holds(&[], &[a(0)]));
    }

    #[test]
    fn lhs_groups_skip_null_rows() {
        let t = sample();
        let d = DictTable::build(&t);
        // x: value 1 on rows {0,1}; NULL row 3 skipped.
        assert_eq!(d.lhs_groups(&[a(0)]), vec![vec![0, 1]]);
        // (x, y): only (1,'a') repeats.
        assert_eq!(d.lhs_groups(&[a(0), a(1)]), vec![vec![0, 1]]);
    }

    #[test]
    fn join_stats_translate_across_tables() {
        #[allow(clippy::unwrap_used)]
        let l = Table::from_rows(
            1,
            [1, 2, 2, 4, -7]
                .iter()
                .map(|&v| vec![Value::Int(v)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        #[allow(clippy::unwrap_used)]
        let r = Table::from_rows(
            1,
            [4, 1, 9]
                .iter()
                .map(|&v| vec![Value::Int(v)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let (dl, dr) = (DictTable::build(&l), DictTable::build(&r));
        let s = join_stats_encoded(&dl, &[a(0)], &dr, &[a(0)]);
        assert_eq!((s.n_left, s.n_right, s.n_join), (4, 3, 2));
    }

    #[test]
    fn nan_interns_consistently() {
        use crate::value::OrdF64;
        #[allow(clippy::unwrap_used)]
        let t = Table::from_rows(
            1,
            vec![
                vec![Value::Float(OrdF64(f64::NAN))],
                vec![Value::Float(OrdF64(f64::NAN))],
                vec![Value::Float(OrdF64(1.5))],
            ],
        )
        .unwrap();
        let d = DictTable::build(&t);
        // Same-payload NaNs share a code (OrdF64 total order).
        assert_eq!(d.column(a(0)).cardinality(), 2);
        assert_eq!(d.count_distinct(&[a(0)]), t.count_distinct(&[a(0)]));
        assert_eq!(
            d.partition1(a(0)),
            StrippedPartition::for_attribute(&t, a(0))
        );
    }

    #[test]
    fn empty_table_kernels() {
        let t = Table::new(2);
        let d = DictTable::build(&t);
        assert_eq!(d.count_distinct(&[a(0)]), 0);
        assert_eq!(d.count_distinct(&[a(0), a(1)]), 0);
        assert!(d.distinct_codes(&[]).is_empty());
        assert!(d.partition(&[a(0), a(1)]).is_key());
        assert!(d.fd_holds(&[a(0)], &[a(1)]));
        assert!(d.lhs_groups(&[a(0)]).is_empty());
    }

    #[test]
    fn builder_matches_batch_build_and_counts_are_fused() {
        let t = sample();
        for i in 0..t.arity() {
            let column = t.column(a(i as u16));
            let built = ColumnDict::build(column);
            // Fused counts: one slot per code, NULLs in slot 0.
            assert_eq!(built.code_counts().len(), built.cardinality() + 1);
            assert_eq!(built.code_counts()[0], built.null_count() as u64);
            let total: u64 = built.code_counts().iter().sum();
            assert_eq!(total, built.rows() as u64);
            // Streaming interner reproduces the batch dictionary.
            let mut b = DictBuilder::new();
            let codes: Vec<u32> = column.iter().map(|v| b.intern(v)).collect();
            assert_eq!(codes, built.codes());
            let slim = b.finish_slim();
            assert_eq!(slim.distinct_values(), built.distinct_values());
            assert_eq!(slim.null_count(), built.null_count());
            assert_eq!(slim.code_counts(), built.code_counts());
            // from_parts round-trips the serialized shape.
            let parts = ColumnDict::from_parts(
                slim.distinct_values().to_vec(),
                slim.null_count(),
                slim.code_counts().to_vec(),
            );
            assert_eq!(parts.code_of(&Value::Int(1)), built.code_of(&Value::Int(1)));
            assert_eq!(parts.cardinality(), built.cardinality());
        }
    }

    #[test]
    fn kernels_fall_back_when_counts_missing() {
        // A hand-assembled dictionary without the counts invariant
        // (e.g. Default + rehydrate) must still partition correctly.
        let t = sample();
        let built = ColumnDict::build(t.column(a(0)));
        let stripped = ColumnDict::default().rehydrate(built.codes().to_vec());
        // Cardinality is 0 on the stripped dict, so counts length
        // mismatches and the kernels recount; partition1 only depends
        // on codes, and all real codes are out of the (empty) domain —
        // exercise just the recount path on the true dict shape.
        assert_eq!(stripped.code_counts().len(), 0);
        let mut manual = built.clone();
        manual.counts = Vec::new();
        assert_eq!(partition1_col(&manual), partition1_col(&built));
        assert_eq!(
            lhs_groups_cols(&[&manual], t.len()),
            lhs_groups_cols(&[&built], t.len())
        );
    }

    #[test]
    fn dict_sketch_lazy_exact_and_invalidated() {
        let t = sample();
        let built = ColumnDict::build(t.column(a(0)));
        // Lazy: nothing built until asked.
        assert!(built.sketch_if_built().is_none());
        let sketch = built.sketch().expect("counts invariant holds");
        assert_eq!(sketch.distinct_exact(), built.cardinality());
        assert_eq!(sketch.null_count(), built.null_count());
        assert_eq!(sketch.rows(), built.rows());
        // Cached: second call returns the same Arc.
        assert!(Arc::ptr_eq(&sketch, &built.sketch().unwrap()));
        // Slim and rehydrated copies carry the sketch.
        assert!(built.slim().sketch_if_built().is_some());
        // Broken counts invariant → no sketch (pruning stays sound).
        // Start from a never-sketched dict: clones of a sketched one
        // deliberately carry the cached sketch (slim/rehydrate rely on
        // that), so the lazy path would never re-examine counts.
        let mut manual = ColumnDict::build(t.column(a(0)));
        manual.counts = Vec::new();
        assert!(manual.sketch().is_none());
        // Ghost codes (a removal that emptied a value) → no sketch.
        let mut ghosted = ColumnDict::build(&[Value::Int(1), Value::Int(2)]);
        assert!(!ghosted.remove_rows(&[1]), "removal leaves a ghost");
        assert!(ghosted.sketch().is_none());
        // Mutation invalidates a previously built sketch.
        let mut appended = ColumnDict::build(t.column(a(0)));
        appended.sketch();
        appended.append_values(&[Value::Int(99)]);
        assert!(appended.sketch_if_built().is_none());
        let resketch = appended.sketch().unwrap();
        assert_eq!(resketch.distinct_exact(), appended.cardinality());
        // from_parts_with_sketch preseeds a sketch equal to a rebuild.
        let slim = built.slim();
        let seeded = ColumnDict::from_parts_with_sketch(
            slim.distinct_values().to_vec(),
            slim.null_count(),
            slim.code_counts().to_vec(),
            sketch.hashes().to_vec(),
        );
        assert_eq!(
            seeded.sketch_if_built().as_deref(),
            Some(sketch.as_ref()),
            "preseeded sketch equals a fresh build"
        );
    }

    #[test]
    fn from_columns_matches_whole_table_build() {
        let t = sample();
        let built = DictTable::build(&t);
        let assembled = DictTable::from_columns(
            (0..t.arity())
                .map(|i| Arc::new(ColumnDict::build(t.column(a(i as u16)))))
                .collect(),
            t.len(),
        );
        assert_eq!(assembled.rows(), built.rows());
        assert_eq!(assembled.arity(), built.arity());
        assert_eq!(
            assembled.distinct_codes(&[a(0), a(1)]),
            built.distinct_codes(&[a(0), a(1)])
        );
    }
}
