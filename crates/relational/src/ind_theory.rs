//! Inclusion-dependency inference — the axiom system of Casanova,
//! Fagin & Papadimitriou (reflexivity, projection-and-permutation,
//! transitivity) plus cycle analysis.
//!
//! The paper's Translate step "does not consider cyclic inclusion
//! dependencies"; this module provides what a full treatment needs:
//! the transitive closure of an IND set, implication testing, removal
//! of redundant INDs, and detection of the cycles themselves (by the
//! classical result, INDs in a cycle over *finite* relations force the
//! included value sets to be equal, collapsing the cycle's members
//! into mutually specialized object-types).

use crate::attr::AttrId;
use crate::deps::{Ind, IndSide};
use crate::schema::RelId;
use std::collections::{BTreeMap, BTreeSet};

/// Applies the **transitivity** axiom to saturation:
/// `R[A] ≪ S[B]` and `S[B] ≪ T[C]` yield `R[A] ≪ T[C]`.
///
/// Composition respects the positional correspondence: the middle
/// side's attribute list must match exactly (same relation, same
/// ordered attribute list).
pub fn transitive_closure(inds: &[Ind]) -> Vec<Ind> {
    let mut set: BTreeSet<Ind> = inds.iter().cloned().collect();
    // Drop reflexive inputs up front; they only generate noise.
    set.retain(|i| i.lhs != i.rhs);
    loop {
        let mut added = Vec::new();
        for a in &set {
            for b in &set {
                if a.rhs == b.lhs && a.lhs != b.rhs {
                    let cand = Ind {
                        lhs: a.lhs.clone(),
                        rhs: b.rhs.clone(),
                    };
                    if !set.contains(&cand) {
                        added.push(cand);
                    }
                }
            }
        }
        if added.is_empty() {
            return set.into_iter().collect();
        }
        set.extend(added);
    }
}

/// Applies the **projection-and-permutation** axiom to one IND: every
/// IND over a sub-sequence of positions (here: every non-empty subset,
/// order preserved) follows. Returns the derived *proper* projections
/// (not the input itself). Exponential in the arity — composite INDs
/// in schema reverse engineering have tiny arity.
pub fn projections(ind: &Ind) -> Vec<Ind> {
    let n = ind.lhs.attrs.len();
    let mut out = Vec::new();
    if n <= 1 {
        return out;
    }
    for mask in 1u32..((1 << n) - 1) {
        let lhs: Vec<AttrId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| ind.lhs.attrs[i])
            .collect();
        let rhs: Vec<AttrId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| ind.rhs.attrs[i])
            .collect();
        out.push(Ind {
            lhs: IndSide::new(ind.lhs.rel, lhs),
            rhs: IndSide::new(ind.rhs.rel, rhs),
        });
    }
    out
}

/// Does `inds ⊨ target` under reflexivity, projection/permutation and
/// transitivity?
///
/// Implementation: saturate with transitivity, then check whether the
/// target is reflexive, present, or a projection/permutation of a
/// present IND.
pub fn implies(inds: &[Ind], target: &Ind) -> bool {
    if target.lhs == target.rhs {
        return true; // reflexivity
    }
    let closure = transitive_closure(inds);
    if closure.contains(target) {
        return true;
    }
    // Projection/permutation: some closed IND has the target as a
    // positional sub-correspondence (any order).
    closure.iter().any(|have| {
        if have.lhs.rel != target.lhs.rel || have.rhs.rel != target.rhs.rel {
            return false;
        }
        // Each (lhs_i, rhs_i) pair of the target must appear as a
        // correspondence pair of `have`.
        target
            .lhs
            .attrs
            .iter()
            .zip(&target.rhs.attrs)
            .all(|(la, ra)| {
                have.lhs
                    .attrs
                    .iter()
                    .zip(&have.rhs.attrs)
                    .any(|(hl, hr)| hl == la && hr == ra)
            })
    })
}

/// Removes INDs implied by the remaining ones (a minimal cover under
/// the axioms). Deterministic for a given input order.
pub fn minimal_cover(inds: &[Ind]) -> Vec<Ind> {
    let mut work: Vec<Ind> = Vec::new();
    for ind in inds {
        if ind.lhs != ind.rhs && !work.contains(ind) {
            work.push(ind.clone());
        }
    }
    let mut i = 0;
    while i < work.len() {
        let candidate = work.remove(i);
        if implies(&work, &candidate) {
            // redundant — dropped
        } else {
            work.insert(i, candidate);
            i += 1;
        }
    }
    work
}

/// A cycle of inclusion dependencies over relations
/// (`R → S → … → R`). Over finite extensions, all value sets along a
/// cycle are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndCycle {
    /// The relations on the cycle, in traversal order (first repeated
    /// implicitly at the end).
    pub relations: Vec<RelId>,
    /// The INDs realizing each hop.
    pub inds: Vec<Ind>,
}

/// Finds the elementary cycles of the IND graph at relation
/// granularity (nodes = relations, edges = INDs). Returns each cycle
/// once, rooted at its smallest relation id. Self-loops
/// (`R[A] ≪ R[B]`, A ≠ B) are reported as length-1 cycles only when
/// both sides coincide as sets — a true value-set cycle — otherwise
/// they are hierarchical (e.g. manager-of) and skipped.
pub fn find_cycles(inds: &[Ind]) -> Vec<IndCycle> {
    // Adjacency at relation granularity.
    let mut adj: BTreeMap<RelId, Vec<&Ind>> = BTreeMap::new();
    for ind in inds {
        adj.entry(ind.lhs.rel).or_default().push(ind);
    }
    let nodes: BTreeSet<RelId> = inds.iter().flat_map(|i| [i.lhs.rel, i.rhs.rel]).collect();

    let mut cycles: Vec<IndCycle> = Vec::new();
    let mut seen_keys: BTreeSet<Vec<RelId>> = BTreeSet::new();

    // Bounded DFS from each root; only paths through ids ≥ root are
    // explored, so each cycle is found exactly once (Johnson-lite —
    // adequate for schema-sized graphs).
    for &root in &nodes {
        let mut stack: Vec<(RelId, Vec<&Ind>)> = vec![(root, Vec::new())];
        while let Some((at, path)) = stack.pop() {
            for &ind in adj.get(&at).into_iter().flatten() {
                if ind.lhs.rel == ind.rhs.rel {
                    // Self-loop: cycle only if the sides carry the
                    // same attribute set.
                    if !path.is_empty() || ind.lhs.attr_set() != ind.rhs.attr_set() {
                        continue;
                    }
                    let key = vec![at];
                    if seen_keys.insert(key) {
                        cycles.push(IndCycle {
                            relations: vec![at],
                            inds: vec![ind.clone()],
                        });
                    }
                    continue;
                }
                let next = ind.rhs.rel;
                if next == root {
                    // Closing edge: a cycle root → … → at → root.
                    let mut hop_path: Vec<&Ind> = path.clone();
                    hop_path.push(ind);
                    let rels: Vec<RelId> = hop_path.iter().map(|i| i.lhs.rel).collect();
                    let key = {
                        let mut k = rels.clone();
                        k.sort();
                        k
                    };
                    if rels.len() >= 2 && seen_keys.insert(key) {
                        cycles.push(IndCycle {
                            relations: rels,
                            inds: hop_path.into_iter().cloned().collect(),
                        });
                    }
                    continue;
                }
                if next < root {
                    continue; // that cycle is found from its own root
                }
                if path.iter().any(|i| i.lhs.rel == next) {
                    continue; // no revisits
                }
                if path.len() >= nodes.len() {
                    continue;
                }
                let mut new_path = path.clone();
                new_path.push(ind);
                stack.push((next, new_path));
            }
        }
    }
    cycles
}

/// Are two relations on a common IND cycle (mutually included)?
pub fn mutually_included(inds: &[Ind], a: RelId, b: RelId) -> bool {
    if a == b {
        return true;
    }
    let closure = transitive_closure(inds);
    let reaches =
        |from: RelId, to: RelId| closure.iter().any(|i| i.lhs.rel == from && i.rhs.rel == to);
    reaches(a, b) && reaches(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RelId {
        RelId(i)
    }
    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    fn unary(lr: u32, la: u16, rr: u32, ra: u16) -> Ind {
        Ind::unary(r(lr), a(la), r(rr), a(ra))
    }

    #[test]
    fn transitivity_composes_matching_middles() {
        let inds = vec![unary(0, 0, 1, 0), unary(1, 0, 2, 0)];
        let closed = transitive_closure(&inds);
        assert!(closed.contains(&unary(0, 0, 2, 0)));
        assert_eq!(closed.len(), 3);
    }

    #[test]
    fn transitivity_requires_exact_middle_match() {
        // R0[0] << R1[0] and R1[1] << R2[0] do NOT compose.
        let inds = vec![unary(0, 0, 1, 0), unary(1, 1, 2, 0)];
        let closed = transitive_closure(&inds);
        assert_eq!(closed.len(), 2);
    }

    #[test]
    fn projection_axiom_derives_unary_from_composite() {
        let ind = Ind::new(
            IndSide::new(r(0), vec![a(0), a(1)]),
            IndSide::new(r(1), vec![a(2), a(3)]),
        )
        .unwrap();
        let projs = projections(&ind);
        assert_eq!(projs.len(), 2);
        assert!(projs.contains(&unary(0, 0, 1, 2)));
        assert!(projs.contains(&unary(0, 1, 1, 3)));
        assert!(projections(&unary(0, 0, 1, 0)).is_empty());
    }

    #[test]
    fn implication_covers_all_three_axioms() {
        let composite = Ind::new(
            IndSide::new(r(0), vec![a(0), a(1)]),
            IndSide::new(r(1), vec![a(0), a(1)]),
        )
        .unwrap();
        let hop = Ind::new(
            IndSide::new(r(1), vec![a(0), a(1)]),
            IndSide::new(r(2), vec![a(5), a(6)]),
        )
        .unwrap();
        let inds = vec![composite, hop];
        // Reflexivity.
        assert!(implies(&inds, &unary(9, 3, 9, 3)));
        // Projection of the composite.
        assert!(implies(&inds, &unary(0, 1, 1, 1)));
        // Permutation: swapped order of the same correspondence.
        let permuted = Ind::new(
            IndSide::new(r(0), vec![a(1), a(0)]),
            IndSide::new(r(1), vec![a(1), a(0)]),
        )
        .unwrap();
        assert!(implies(&inds, &permuted));
        // Transitivity then projection.
        assert!(implies(&inds, &unary(0, 0, 2, 5)));
        // Not implied: wrong correspondence.
        assert!(!implies(&inds, &unary(0, 0, 1, 1)));
    }

    #[test]
    fn minimal_cover_drops_transitive_edge() {
        let inds = vec![
            unary(0, 0, 1, 0),
            unary(1, 0, 2, 0),
            unary(0, 0, 2, 0), // implied
        ];
        let cover = minimal_cover(&inds);
        assert_eq!(cover.len(), 2);
        assert!(!cover.contains(&unary(0, 0, 2, 0)));
        // Everything in the original set is still implied.
        for ind in &inds {
            assert!(implies(&cover, ind));
        }
    }

    #[test]
    fn minimal_cover_drops_projection_of_composite() {
        let composite = Ind::new(
            IndSide::new(r(0), vec![a(0), a(1)]),
            IndSide::new(r(1), vec![a(0), a(1)]),
        )
        .unwrap();
        let inds = vec![composite.clone(), unary(0, 0, 1, 0)];
        let cover = minimal_cover(&inds);
        assert_eq!(cover, vec![composite]);
    }

    #[test]
    fn two_cycle_detected() {
        let inds = vec![unary(0, 0, 1, 0), unary(1, 0, 0, 0)];
        let cycles = find_cycles(&inds);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].relations, vec![r(0), r(1)]);
        assert!(mutually_included(&inds, r(0), r(1)));
    }

    #[test]
    fn three_cycle_detected_once() {
        let inds = vec![unary(0, 0, 1, 0), unary(1, 0, 2, 0), unary(2, 0, 0, 0)];
        let cycles = find_cycles(&inds);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].relations.len(), 3);
        assert_eq!(cycles[0].inds.len(), 3);
    }

    #[test]
    fn dag_has_no_cycles() {
        let inds = vec![unary(0, 0, 1, 0), unary(1, 0, 2, 0), unary(0, 0, 2, 0)];
        assert!(find_cycles(&inds).is_empty());
        assert!(!mutually_included(&inds, r(0), r(1)));
        assert!(mutually_included(&inds, r(1), r(1)));
    }

    #[test]
    fn hierarchical_self_loop_is_not_a_cycle() {
        // Employee[manager] << Employee[id]: hierarchy, not a cycle.
        let inds = vec![unary(0, 1, 0, 0)];
        assert!(find_cycles(&inds).is_empty());
        // Employee[id] << Employee[id] would be one (degenerate) — but
        // reflexive INDs are filtered before they reach analysis.
        let refl = vec![unary(0, 0, 0, 0)];
        assert_eq!(find_cycles(&refl).len(), 1);
    }

    #[test]
    fn two_disjoint_cycles() {
        let inds = vec![
            unary(0, 0, 1, 0),
            unary(1, 0, 0, 0),
            unary(2, 0, 3, 0),
            unary(3, 0, 2, 0),
        ];
        let cycles = find_cycles(&inds);
        assert_eq!(cycles.len(), 2);
    }
}
