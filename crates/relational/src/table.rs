//! Table storage: the extension `r_i` of a relation `R_i(X_i)`.
//!
//! Storage is columnar (`Vec<Value>` per attribute). The dependency
//! algorithms are dominated by projections over small attribute sets and
//! distinct counting, which columnar layout serves directly; tuple
//! reconstruction is only needed for display and INSERT.

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::schema::Relation;
use crate::value::Value;
use std::collections::HashSet;

/// A tuple projected on an ordered attribute list; used as hash/set key.
pub type ProjKey = Vec<Value>;

/// The extension of one relation: a bag of tuples in columnar layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl Table {
    /// Creates an empty table with `arity` columns.
    pub fn new(arity: usize) -> Self {
        Table {
            columns: vec![Vec::new(); arity],
            rows: 0,
        }
    }

    /// Creates an empty table shaped for `relation`.
    pub fn for_relation(relation: &Relation) -> Self {
        Table::new(relation.arity())
    }

    /// Does every column hold one value per row? `false` only for a
    /// *streamed extension* — a table whose rows live in the paged
    /// store (`crate::spill`) while the in-memory columns stay empty.
    /// Raw-column consumers must check this before trusting
    /// [`Table::column`].
    pub fn is_materialized(&self) -> bool {
        self.columns.iter().all(|c| c.len() == self.rows)
    }

    /// Declares `rows` rows without materializing them — the streamed
    /// extension marker. Only valid on an empty table.
    pub(crate) fn set_streamed_rows(&mut self, rows: usize) {
        assert!(
            self.rows == 0 && self.columns.iter().all(Vec::is_empty),
            "streamed extension over a populated table"
        );
        self.rows = rows;
    }

    /// Installs `values` as the full contents of one empty column of
    /// a streamed extension — the restructuring hydration path.
    pub(crate) fn hydrate_column(&mut self, attr: AttrId, values: Vec<Value>) {
        assert_eq!(
            values.len(),
            self.rows,
            "hydrated column must match the declared row count"
        );
        let col = &mut self.columns[attr.index()];
        assert!(col.is_empty(), "hydrating a column that already has data");
        *col = values;
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Is the table empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Appends a tuple without validation against a relation (domain
    /// checks live in [`crate::database::Database::insert`]).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), RelationalError> {
        if row.len() != self.columns.len() {
            return Err(RelationalError::ArityMismatch {
                relation: String::from("<detached table>"),
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Bulk constructor from rows; all rows must share the arity.
    pub fn from_rows(
        arity: usize,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Self, RelationalError> {
        let mut t = Table::new(arity);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// Single cell access.
    #[inline]
    pub fn cell(&self, row: usize, attr: AttrId) -> &Value {
        &self.columns[attr.index()][row]
    }

    /// Full column access.
    pub fn column(&self, attr: AttrId) -> &[Value] {
        &self.columns[attr.index()]
    }

    /// Materializes row `i` as a vector (display/insert paths only).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// Iterates materialized rows. Cloning cost is acceptable on the
    /// display path; algorithms use [`Table::project_row`] instead.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(|i| self.row(i))
    }

    /// Projects row `i` on an ordered attribute list `t[Y]`.
    pub fn project_row(&self, i: usize, attrs: &[AttrId]) -> ProjKey {
        attrs
            .iter()
            .map(|a| self.columns[a.index()][i].clone())
            .collect()
    }

    /// Does row `i` contain a NULL among `attrs`?
    pub fn row_has_null(&self, i: usize, attrs: &[AttrId]) -> bool {
        attrs.iter().any(|a| self.columns[a.index()][i].is_null())
    }

    /// The column slices of `attrs`, resolved once so row loops don't
    /// re-walk the `attr → column` lookup per row.
    fn column_slices(&self, attrs: &[AttrId]) -> Vec<&[Value]> {
        attrs.iter().map(|a| self.column(*a)).collect()
    }

    /// The set of *distinct, fully non-null* projections `π_Y(r)` — SQL
    /// `SELECT DISTINCT Y` with rows containing NULL in `Y` dropped,
    /// matching the paper's `‖r[Y]‖` (`COUNT (DISTINCT Y)`).
    ///
    /// This is the reference implementation; hot paths use the
    /// dictionary-encoded kernels in [`crate::encode`]. The set grows
    /// organically — pre-sizing to the row count over-allocates badly
    /// on low-cardinality columns.
    pub fn distinct_projection(&self, attrs: &[AttrId]) -> HashSet<ProjKey> {
        let cols = self.column_slices(attrs);
        let mut set = HashSet::new();
        'rows: for i in 0..self.rows {
            let mut key = Vec::with_capacity(cols.len());
            for c in &cols {
                let v = &c[i];
                if v.is_null() {
                    continue 'rows;
                }
                key.push(v.clone());
            }
            set.insert(key);
        }
        set
    }

    /// `‖r[Y]‖` — the number of distinct non-null projections.
    pub fn count_distinct(&self, attrs: &[AttrId]) -> usize {
        self.distinct_projection(attrs).len()
    }

    /// Removes the rows at `sorted` (strictly ascending, in-bounds)
    /// in one pass per column. Surviving rows keep their relative
    /// order, so row `i` moves to index `i − |{d ∈ sorted : d < i}|` —
    /// the remap the delta-maintenance layer ([`crate::delta`])
    /// applies to cached partitions and LHS groups.
    pub(crate) fn remove_rows(&mut self, sorted: &[usize]) {
        for col in &mut self.columns {
            let mut next_del = 0usize;
            let mut write = 0usize;
            for read in 0..col.len() {
                if next_del < sorted.len() && sorted[next_del] == read {
                    next_del += 1;
                    continue;
                }
                if write != read {
                    col.swap(write, read);
                }
                write += 1;
            }
            col.truncate(write);
        }
        self.rows -= sorted.len();
    }

    /// Removes the columns in `drop` (sorted or not), producing a new
    /// table whose column order matches the relation with those
    /// attributes removed. Used by the Restruct algorithm.
    pub fn drop_columns(&self, drop: &[AttrId]) -> Table {
        let dropset: HashSet<usize> = drop.iter().map(|a| a.index()).collect();
        let columns: Vec<Vec<Value>> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(i, _)| !dropset.contains(i))
            .map(|(_, c)| c.clone())
            .collect();
        Table {
            rows: self.rows,
            columns,
        }
    }

    /// Builds a new table containing the distinct non-null projections
    /// on `attrs`, in first-seen order. Used when Restruct materializes
    /// a new relation `R_p(A_i B_i)` out of an FD `A_i → B_i`.
    pub fn distinct_subtable(&self, attrs: &[AttrId]) -> Table {
        let cols = self.column_slices(attrs);
        let mut seen: HashSet<ProjKey> = HashSet::new();
        let mut out = Table::new(attrs.len());
        'rows: for i in 0..self.rows {
            let mut key = Vec::with_capacity(cols.len());
            for c in &cols {
                let v = &c[i];
                if v.is_null() {
                    continue 'rows;
                }
                key.push(v.clone());
            }
            if seen.insert(key.clone()) {
                // The key holds exactly `attrs.len()` values and `out`
                // was built with that arity.
                #[allow(clippy::expect_used)]
                out.push_row(key).expect("arity fixed by construction");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    fn sample() -> Table {
        // (x, y): (1,'a') (1,'a') (2,'b') (NULL,'c') (3,NULL)
        Table::from_rows(
            2,
            vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Int(2), Value::str("b")],
                vec![Value::Null, Value::str("c")],
                vec![Value::Int(3), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_distinct_skips_nulls() {
        let t = sample();
        assert_eq!(t.len(), 5);
        // x: {1, 2, 3}
        assert_eq!(t.count_distinct(&[a(0)]), 3);
        // y: {'a','b','c'}
        assert_eq!(t.count_distinct(&[a(1)]), 3);
        // (x, y): rows with any null dropped -> (1,a),(2,b)
        assert_eq!(t.count_distinct(&[a(0), a(1)]), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(2);
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
        assert!(t.push_row(vec![Value::Int(1), Value::Int(2)]).is_ok());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn projection_order_matters() {
        let t = sample();
        assert_eq!(
            t.project_row(2, &[a(1), a(0)]),
            vec![Value::str("b"), Value::Int(2)]
        );
    }

    #[test]
    fn drop_columns_keeps_rows() {
        let t = sample();
        let dropped = t.drop_columns(&[a(0)]);
        assert_eq!(dropped.arity(), 1);
        assert_eq!(dropped.len(), 5);
        assert_eq!(dropped.cell(0, a(0)), &Value::str("a"));
    }

    #[test]
    fn distinct_subtable_dedups_in_first_seen_order() {
        let t = sample();
        let sub = t.distinct_subtable(&[a(0)]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.cell(0, a(0)), &Value::Int(1));
        assert_eq!(sub.cell(1, a(0)), &Value::Int(2));
        assert_eq!(sub.cell(2, a(0)), &Value::Int(3));
    }

    #[test]
    fn row_has_null_detects_per_attr() {
        let t = sample();
        assert!(t.row_has_null(3, &[a(0)]));
        assert!(!t.row_has_null(3, &[a(1)]));
        assert!(t.row_has_null(4, &[a(0), a(1)]));
    }

    #[test]
    fn rows_roundtrip() {
        let t = sample();
        let rows: Vec<_> = t.rows().collect();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], vec![Value::Int(1), Value::str("a")]);
    }
}
