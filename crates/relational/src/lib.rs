//! # dbre-relational
//!
//! Relational-model substrate for the DBRE reproduction of
//! *"Towards the Reverse Engineering of Denormalized Relational
//! Databases"* (Petit, Toumani, Boulicaut, Kouloumdjian — ICDE 1996).
//!
//! A relational database here is the paper's triple `(R, E, Δ)`:
//!
//! * `R` — the [`schema::Schema`], a set of [`schema::Relation`]s;
//! * `E` — the extension, one [`table::Table`] per relation;
//! * `Δ = F ∪ IND` — [`deps::Dependencies`], functional plus inclusion
//!   dependencies, *empty at the start of reverse engineering*.
//!
//! Alongside sit the dictionary constraints of §4 —
//! [`deps::Constraints`] holding `K` (unique/keys) and `N` (not-null) —
//! and the counting primitives of §6.1 ([`counting`]) that give the
//! `‖r[X]‖` cardinalities driving IND-Discovery.
//!
//! Classical dependency theory lives in [`fd_theory`] (closures, minimal
//! covers, candidate keys), [`normal_forms`] (1NF–BCNF analysis used to
//! check that the Restruct output is in 3NF), and [`synthesis`]
//! (Bernstein's 3NF synthesis, the blind-normalization baseline the
//! paper argues against).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod backend;
pub mod bufpool;
pub mod chase;
pub mod counting;
pub mod csv;
pub mod database;
pub mod delta;
pub mod deps;
pub mod encode;
pub mod error;
pub mod fasthash;
pub mod fd_theory;
pub mod ind_theory;
pub mod normal_forms;
pub mod pages;
pub mod par;
pub mod partitions;
pub mod schema;
pub mod sketch;
pub mod snapshot;
pub mod spill;
pub mod stats;
pub mod synthesis;
pub mod table;
pub mod value;

pub use attr::{AttrId, AttrSet, Attribute};
pub use backend::{BackendExecStats, CountBackend, EncodedBackend, ReferenceBackend};
pub use bufpool::{BufferPool, PageCacheStats};
pub use counting::{join_stats, EquiJoin, JoinStats};
pub use csv::CsvError;
pub use database::Database;
pub use delta::Delta;
pub use deps::{Constraints, Dependencies, Fd, Ind, IndSide, Key};
pub use encode::{ColumnDict, DictBuilder, DictTable, EncodedSet};
pub use error::{DbreError, RelationalError};
pub use fasthash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use pages::{PageError, PageFileWriter, PagedBackend, PagedColumn};
pub use par::par_map;
pub use partitions::StrippedPartition;
pub use schema::{QualAttrs, RelId, Relation, Schema};
pub use sketch::{ColumnSketch, SketchMode, SketchPruneStats};
pub use snapshot::{DbSnapshot, SharedDb};
pub use spill::{SpillCacheStats, SpilledTable};
pub use stats::{StatsCounters, StatsEngine};
pub use table::Table;
pub use value::{Date, Domain, OrdF64, Value};
