//! Stripped partitions — the core data structure of TANE-style FD
//! discovery (Huhtala et al.).
//!
//! The partition `π_X` of a table groups row indices by their values on
//! the attribute set `X`. *Stripping* removes singleton classes: they
//! can never witness an FD violation, and dropping them makes partition
//! products near-linear in practice.
//!
//! NULL semantics: this module treats `NULL` as an ordinary value equal
//! to itself (the convention of the FD-discovery literature). This
//! differs from `Database::fd_holds`, which follows SQL and skips
//! tuples with NULL on the left-hand side; the two agree on NULL-free
//! data, which the equivalence property test exercises.

use crate::attr::AttrId;
use crate::table::Table;
use std::collections::HashMap;

/// A stripped partition: equivalence classes of row indices with ≥ 2
/// members, plus the number of rows of the underlying table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    /// Classes (each sorted ascending), in deterministic order.
    pub classes: Vec<Vec<usize>>,
    /// Total rows in the table the partition was built from.
    pub rows: usize,
}

impl StrippedPartition {
    /// Builds `π_X` for a single attribute.
    pub fn for_attribute(table: &Table, attr: AttrId) -> Self {
        let mut groups: HashMap<&crate::value::Value, Vec<usize>> = HashMap::new();
        for (i, v) in table.column(attr).iter().enumerate() {
            groups.entry(v).or_default().push(i);
        }
        Self::from_groups(groups.into_values(), table.len())
    }

    /// Builds `π_X` for an attribute set by chained products.
    pub fn for_attrs(table: &Table, attrs: &[AttrId]) -> Self {
        match attrs {
            [] => Self::single_class(table.len()),
            [first, rest @ ..] => {
                let mut p = Self::for_attribute(table, *first);
                for a in rest {
                    p = p.product(&Self::for_attribute(table, *a));
                }
                p
            }
        }
    }

    /// The partition with one class holding every row (`π_∅`).
    pub fn single_class(rows: usize) -> Self {
        let classes = if rows >= 2 {
            vec![(0..rows).collect()]
        } else {
            Vec::new()
        };
        StrippedPartition { classes, rows }
    }

    fn from_groups(groups: impl IntoIterator<Item = Vec<usize>>, rows: usize) -> Self {
        let mut classes: Vec<Vec<usize>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort();
        StrippedPartition { classes, rows }
    }

    /// Number of non-singleton classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// TANE's error measure `e(X) = (Σ|c|) − |classes|`: the number of
    /// rows that would have to be removed to make `X` a key.
    pub fn error(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// Is `X` a superkey (all classes singleton)?
    pub fn is_key(&self) -> bool {
        self.classes.is_empty()
    }

    /// Partition product `π_X · π_Y = π_{XY}` (TANE's linear-time
    /// algorithm with a probe table).
    pub fn product(&self, other: &Self) -> Self {
        debug_assert_eq!(self.rows, other.rows);
        // probe[row] = class index in self (+1), 0 = stripped singleton.
        let mut probe = vec![0usize; self.rows];
        for (ci, class) in self.classes.iter().enumerate() {
            for &r in class {
                probe[r] = ci + 1;
            }
        }
        let mut groups: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for (cj, class) in other.classes.iter().enumerate() {
            for &r in class {
                let pi = probe[r];
                if pi != 0 {
                    groups.entry((pi, cj)).or_default().push(r);
                }
            }
        }
        Self::from_groups(groups.into_values(), self.rows)
    }

    /// Does the FD `X → Y` hold, given `π_X` (self) and `π_{XY}`?
    ///
    /// Holds iff refining by `Y` splits nothing: `e(π_X) = e(π_{XY})`.
    pub fn refines_to(&self, product_with_rhs: &Self) -> bool {
        self.error() == product_with_rhs.error()
    }
}

/// Convenience: does `X → Y` hold in `table` (NULL = NULL convention)?
pub fn fd_holds_partition(table: &Table, lhs: &[AttrId], rhs: &[AttrId]) -> bool {
    let px = StrippedPartition::for_attrs(table, lhs);
    let pxy = px.product(&StrippedPartition::for_attrs(table, rhs));
    px.refines_to(&pxy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    fn table(rows: &[(i64, i64, i64)]) -> Table {
        Table::from_rows(
            3,
            rows.iter()
                .map(|(x, y, z)| vec![Value::Int(*x), Value::Int(*y), Value::Int(*z)]),
        )
        .unwrap()
    }

    #[test]
    fn single_attribute_partition() {
        let t = table(&[(1, 10, 0), (1, 10, 1), (2, 20, 2), (3, 20, 3)]);
        let p = StrippedPartition::for_attribute(&t, a(0));
        // value 1 -> {0,1}; values 2,3 singletons stripped.
        assert_eq!(p.classes, vec![vec![0, 1]]);
        assert_eq!(p.error(), 1);
        assert!(!p.is_key());
    }

    #[test]
    fn key_attribute_has_empty_partition() {
        let t = table(&[(1, 0, 0), (2, 0, 1), (3, 0, 2)]);
        let p = StrippedPartition::for_attribute(&t, a(0));
        assert!(p.is_key());
        assert_eq!(p.error(), 0);
    }

    #[test]
    fn product_equals_direct_partition() {
        let t = table(&[(1, 10, 0), (1, 10, 0), (1, 20, 1), (2, 10, 1), (2, 10, 0)]);
        let px = StrippedPartition::for_attribute(&t, a(0));
        let py = StrippedPartition::for_attribute(&t, a(1));
        let product = px.product(&py);
        let direct = StrippedPartition::for_attrs(&t, &[a(0), a(1)]);
        assert_eq!(product, direct);
        assert_eq!(product.classes, vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn fd_detection() {
        // x -> y holds; y -> x does not.
        let t = table(&[(1, 10, 0), (1, 10, 1), (2, 20, 2), (3, 20, 3)]);
        assert!(fd_holds_partition(&t, &[a(0)], &[a(1)]));
        assert!(!fd_holds_partition(&t, &[a(1)], &[a(0)]));
        // Composite LHS: (x, y) -> z fails (rows 0,1 agree on x,y, differ z).
        assert!(!fd_holds_partition(&t, &[a(0), a(1)], &[a(2)]));
    }

    #[test]
    fn empty_lhs_means_constant_column() {
        let t = table(&[(1, 5, 0), (2, 5, 1), (3, 5, 2)]);
        assert!(fd_holds_partition(&t, &[], &[a(1)]));
        assert!(!fd_holds_partition(&t, &[], &[a(0)]));
    }

    #[test]
    fn nulls_equal_under_mining_convention() {
        let t = Table::from_rows(
            2,
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Null, Value::Int(2)],
            ],
        )
        .unwrap();
        // NULL = NULL here, so lhs groups both rows and the FD fails.
        assert!(!fd_holds_partition(&t, &[AttrId(0)], &[AttrId(1)]));
    }

    #[test]
    fn tiny_tables() {
        let t = table(&[]);
        assert!(StrippedPartition::for_attribute(&t, a(0)).is_key());
        assert!(fd_holds_partition(&t, &[a(0)], &[a(1)]));
        let t = table(&[(1, 2, 3)]);
        assert!(fd_holds_partition(&t, &[a(0)], &[a(1)]));
        assert!(StrippedPartition::single_class(1).is_key());
        assert!(!StrippedPartition::single_class(2).is_key());
    }

    #[test]
    fn agreement_with_database_fd_holds_on_null_free_data() {
        use crate::attr::AttrSet;
        use crate::database::Database;
        use crate::deps::Fd;
        use crate::schema::Relation;
        use crate::value::Domain;

        let rows = [(1, 10, 0), (1, 10, 1), (2, 20, 2), (3, 20, 3)];
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of(
                "T",
                &[("x", Domain::Int), ("y", Domain::Int), ("z", Domain::Int)],
            ))
            .unwrap();
        for (x, y, z) in rows {
            db.insert(rel, vec![Value::Int(x), Value::Int(y), Value::Int(z)])
                .unwrap();
        }
        let t = table(&rows);
        for lhs_mask in 1u8..8 {
            for rhs_bit in 0..3u16 {
                let lhs: Vec<AttrId> = (0..3u16)
                    .filter(|i| lhs_mask & (1 << i) != 0)
                    .map(AttrId)
                    .collect();
                let fd = Fd::new(
                    rel,
                    AttrSet::from_iter_ids(lhs.iter().copied()),
                    AttrSet::from_indices([rhs_bit]),
                );
                assert_eq!(
                    db.fd_holds(&fd),
                    fd_holds_partition(&t, &lhs, &[AttrId(rhs_bit)]),
                    "divergence on lhs={lhs:?} rhs={rhs_bit}"
                );
            }
        }
    }
}
