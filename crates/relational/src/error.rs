//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by schema construction, table loading and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A relation declared two attributes with the same name.
    DuplicateAttribute {
        /// The offending relation.
        relation: String,
        /// The duplicated attribute name.
        attribute: String,
    },
    /// Two relations share a name.
    DuplicateRelation(String),
    /// Reference to an attribute that does not exist.
    UnknownAttribute {
        /// The relation searched.
        relation: String,
        /// The missing attribute name.
        attribute: String,
    },
    /// Reference to a relation that does not exist.
    UnknownRelation(String),
    /// A relation exceeded the `u16` attribute-index space.
    TooManyAttributes(String),
    /// A tuple's arity does not match its relation.
    ArityMismatch {
        /// The relation.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Tuple arity.
        got: usize,
    },
    /// A value does not fit the declared domain of its column.
    DomainViolation {
        /// The relation.
        relation: String,
        /// The attribute.
        attribute: String,
        /// Display form of the offending value.
        value: String,
    },
    /// A declared key constraint does not hold in the extension.
    KeyViolation {
        /// The relation.
        relation: String,
        /// Display form of the key attribute set.
        key: String,
    },
    /// A declared not-null constraint does not hold in the extension.
    NotNullViolation {
        /// The relation.
        relation: String,
        /// The attribute.
        attribute: String,
    },
    /// An inclusion dependency was declared between attribute lists of
    /// different lengths.
    IndArityMismatch {
        /// Left side length.
        lhs: usize,
        /// Right side length.
        rhs: usize,
    },
    /// An attribute list that must be non-empty (a join side, an FD
    /// left-hand side) was empty.
    EmptyAttrList {
        /// The relation the empty list was projected from.
        relation: String,
    },
    /// A row-level mutation (append/delete) targeted a streamed
    /// extension, whose rows live in the paged store.
    StreamedExtension {
        /// The relation.
        relation: String,
    },
    /// A delete set was out of bounds or not strictly ascending.
    BadDeleteSet {
        /// The relation.
        relation: String,
        /// The offending row index.
        index: usize,
        /// The table's row count.
        rows: usize,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DuplicateAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "duplicate attribute `{attribute}` in relation `{relation}`"
                )
            }
            RelationalError::DuplicateRelation(name) => {
                write!(f, "duplicate relation `{name}`")
            }
            RelationalError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "unknown attribute `{attribute}` in relation `{relation}`"
                )
            }
            RelationalError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}`")
            }
            RelationalError::TooManyAttributes(name) => {
                write!(f, "relation `{name}` has more than 65535 attributes")
            }
            RelationalError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "tuple arity {got} does not match relation `{relation}` arity {expected}"
                )
            }
            RelationalError::DomainViolation {
                relation,
                attribute,
                value,
            } => {
                write!(
                    f,
                    "value {value} violates the domain of `{relation}.{attribute}`"
                )
            }
            RelationalError::KeyViolation { relation, key } => {
                write!(f, "key {{{key}}} violated in relation `{relation}`")
            }
            RelationalError::NotNullViolation {
                relation,
                attribute,
            } => {
                write!(f, "not-null violated on `{relation}.{attribute}`")
            }
            RelationalError::IndArityMismatch { lhs, rhs } => {
                write!(
                    f,
                    "inclusion dependency sides have different arity ({lhs} vs {rhs})"
                )
            }
            RelationalError::EmptyAttrList { relation } => {
                write!(f, "empty attribute list on relation `{relation}`")
            }
            RelationalError::StreamedExtension { relation } => {
                write!(
                    f,
                    "relation `{relation}` is a streamed extension; row mutations need \
                     materialized columns"
                )
            }
            RelationalError::BadDeleteSet {
                relation,
                index,
                rows,
            } => {
                write!(
                    f,
                    "delete set for `{relation}` invalid at index {index} \
                     (must be strictly ascending and < {rows})"
                )
            }
        }
    }
}

impl std::error::Error for RelationalError {}

/// Unified error taxonomy for the whole reverse-engineering pipeline.
///
/// Every layer converts its local error into this type at the crate
/// boundary: `RelationalError` and [`crate::csv::CsvError`] convert
/// here directly, `dbre-sql`'s `SqlError` converts via a `From` impl
/// in that crate (the orphan rule places it next to `SqlError`), and
/// the interactive pipeline wraps oracle aborts and caught panics so a
/// degraded run can report *typed* stage failures instead of
/// unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbreError {
    /// Schema or constraint violation from the relational substrate.
    Relational(RelationalError),
    /// CSV import failure (extension loading).
    Csv(crate::csv::CsvError),
    /// SQL lexing/parsing/semantic failure, already rendered. The
    /// typed `SqlError` lives in `dbre-sql`, which depends on this
    /// crate; it converts into this variant at its boundary.
    Sql(String),
    /// Equi-join extraction failure from an application source.
    Extract(String),
    /// Paged-store failure: a spill file is truncated, corrupt or
    /// unreadable (see [`crate::pages::PageError`]).
    Page(crate::pages::PageError),
    /// The expert aborted the interactive session mid-dialogue.
    OracleAbort(String),
    /// A pipeline stage panicked; the unwind was caught at the stage
    /// boundary and demoted to this typed error.
    Panic {
        /// The stage that panicked (e.g. `"restruct"`).
        stage: String,
        /// The panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for DbreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbreError::Relational(e) => write!(f, "{e}"),
            DbreError::Csv(e) => write!(f, "{e}"),
            DbreError::Sql(m) => write!(f, "SQL error: {m}"),
            DbreError::Extract(m) => write!(f, "extraction error: {m}"),
            DbreError::Page(e) => write!(f, "paged store error: {e}"),
            DbreError::OracleAbort(m) => write!(f, "oracle aborted the session: {m}"),
            DbreError::Panic { stage, message } => {
                write!(f, "stage `{stage}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for DbreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbreError::Relational(e) => Some(e),
            DbreError::Csv(e) => Some(e),
            DbreError::Page(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for DbreError {
    fn from(e: RelationalError) -> Self {
        DbreError::Relational(e)
    }
}

impl From<crate::csv::CsvError> for DbreError {
    fn from(e: crate::csv::CsvError) -> Self {
        DbreError::Csv(e)
    }
}

impl From<crate::pages::PageError> for DbreError {
    fn from(e: crate::pages::PageError) -> Self {
        DbreError::Page(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationalError::UnknownAttribute {
            relation: "R".into(),
            attribute: "x".into(),
        };
        assert!(e.to_string().contains("unknown attribute"));
        assert!(e.to_string().contains('R'));
        let e = RelationalError::IndArityMismatch { lhs: 2, rhs: 1 };
        assert!(e.to_string().contains("arity"));
    }
}
