//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by schema construction, table loading and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A relation declared two attributes with the same name.
    DuplicateAttribute {
        /// The offending relation.
        relation: String,
        /// The duplicated attribute name.
        attribute: String,
    },
    /// Two relations share a name.
    DuplicateRelation(String),
    /// Reference to an attribute that does not exist.
    UnknownAttribute {
        /// The relation searched.
        relation: String,
        /// The missing attribute name.
        attribute: String,
    },
    /// Reference to a relation that does not exist.
    UnknownRelation(String),
    /// A relation exceeded the `u16` attribute-index space.
    TooManyAttributes(String),
    /// A tuple's arity does not match its relation.
    ArityMismatch {
        /// The relation.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Tuple arity.
        got: usize,
    },
    /// A value does not fit the declared domain of its column.
    DomainViolation {
        /// The relation.
        relation: String,
        /// The attribute.
        attribute: String,
        /// Display form of the offending value.
        value: String,
    },
    /// A declared key constraint does not hold in the extension.
    KeyViolation {
        /// The relation.
        relation: String,
        /// Display form of the key attribute set.
        key: String,
    },
    /// A declared not-null constraint does not hold in the extension.
    NotNullViolation {
        /// The relation.
        relation: String,
        /// The attribute.
        attribute: String,
    },
    /// An inclusion dependency was declared between attribute lists of
    /// different lengths.
    IndArityMismatch {
        /// Left side length.
        lhs: usize,
        /// Right side length.
        rhs: usize,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DuplicateAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "duplicate attribute `{attribute}` in relation `{relation}`"
                )
            }
            RelationalError::DuplicateRelation(name) => {
                write!(f, "duplicate relation `{name}`")
            }
            RelationalError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "unknown attribute `{attribute}` in relation `{relation}`"
                )
            }
            RelationalError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}`")
            }
            RelationalError::TooManyAttributes(name) => {
                write!(f, "relation `{name}` has more than 65535 attributes")
            }
            RelationalError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "tuple arity {got} does not match relation `{relation}` arity {expected}"
                )
            }
            RelationalError::DomainViolation {
                relation,
                attribute,
                value,
            } => {
                write!(
                    f,
                    "value {value} violates the domain of `{relation}.{attribute}`"
                )
            }
            RelationalError::KeyViolation { relation, key } => {
                write!(f, "key {{{key}}} violated in relation `{relation}`")
            }
            RelationalError::NotNullViolation {
                relation,
                attribute,
            } => {
                write!(f, "not-null violated on `{relation}.{attribute}`")
            }
            RelationalError::IndArityMismatch { lhs, rhs } => {
                write!(
                    f,
                    "inclusion dependency sides have different arity ({lhs} vs {rhs})"
                )
            }
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationalError::UnknownAttribute {
            relation: "R".into(),
            attribute: "x".into(),
        };
        assert!(e.to_string().contains("unknown attribute"));
        assert!(e.to_string().contains('R'));
        let e = RelationalError::IndArityMismatch { lhs: 2, rhs: 1 };
        assert!(e.to_string().contains("arity"));
    }
}
