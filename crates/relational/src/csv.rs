//! CSV import/export for tables — how real reverse-engineering
//! engagements receive legacy extensions (dumps, not live DBMS
//! connections).
//!
//! The dialect is the common denominator: comma separator, `"`
//! quoting with `""` escape, first line is the header, empty unquoted
//! fields are `NULL`. Values are coerced into the declared domain of
//! the target relation.

use crate::attr::AttrId;
use crate::database::Database;
use crate::error::RelationalError;
use crate::schema::RelId;
use crate::table::Table;
use crate::value::Value;
use std::fmt;

/// CSV errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// Structural problem in the text.
    Malformed {
        /// 1-based line.
        line: usize,
        /// Description.
        message: String,
    },
    /// Header/relation mismatch or value coercion failure.
    Schema(String),
    /// Bubbled-up relational error.
    Relational(RelationalError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Malformed { line, message } => {
                write!(f, "malformed CSV at line {line}: {message}")
            }
            CsvError::Schema(m) => write!(f, "CSV schema error: {m}"),
            CsvError::Relational(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<RelationalError> for CsvError {
    fn from(e: RelationalError) -> Self {
        CsvError::Relational(e)
    }
}

/// Splits CSV text into records of raw fields. `None` fields are
/// unquoted-empty (→ NULL); quoted-empty stays `Some("")`.
fn parse_records(text: &str) -> Result<Vec<Vec<Option<String>>>, CsvError> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<Option<String>> = Vec::new();
    let mut quoted = false;
    let mut was_quoted = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();

    let push_field = |record: &mut Vec<Option<String>>, field: &mut String, was_quoted: bool| {
        if field.is_empty() && !was_quoted {
            record.push(None);
        } else {
            record.push(Some(std::mem::take(field)));
        }
    };

    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        quoted = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(CsvError::Malformed {
                        line,
                        message: "quote inside unquoted field".into(),
                    });
                }
                quoted = true;
                was_quoted = true;
            }
            ',' => {
                push_field(&mut record, &mut field, was_quoted);
                was_quoted = false;
            }
            '\r' => {}
            '\n' => {
                push_field(&mut record, &mut field, was_quoted);
                was_quoted = false;
                if !(record.len() == 1 && record[0].is_none()) {
                    records.push(std::mem::take(&mut record));
                } else {
                    record.clear();
                }
                line += 1;
            }
            other => field.push(other),
        }
    }
    if quoted {
        return Err(CsvError::Malformed {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if !field.is_empty() || was_quoted || !record.is_empty() {
        push_field(&mut record, &mut field, was_quoted);
        if !(record.len() == 1 && record[0].is_none()) {
            records.push(record);
        }
    }
    Ok(records)
}

/// Loads CSV text into an existing relation. The header must name the
/// relation's attributes (any order); values are coerced per the
/// declared domains; unquoted-empty fields become NULL.
pub fn import_csv(db: &mut Database, rel: RelId, text: &str) -> Result<usize, CsvError> {
    // Tolerate a leading UTF-8 byte-order mark (Excel and Windows
    // exports routinely prepend one); without this the first header
    // column would never resolve.
    let text = text.strip_prefix('\u{feff}').unwrap_or(text);
    let records = parse_records(text)?;
    let Some(header) = records.first() else {
        return Ok(0);
    };
    let relation = db.schema.relation(rel).clone();
    let mut mapping: Vec<AttrId> = Vec::with_capacity(header.len());
    for (i, h) in header.iter().enumerate() {
        let name = h
            .as_deref()
            .ok_or_else(|| CsvError::Schema(format!("empty header field at position {}", i + 1)))?;
        let id = relation.attr_id(name).ok_or_else(|| {
            CsvError::Schema(format!(
                "header column `{name}` not in relation `{}`",
                relation.name
            ))
        })?;
        // A duplicate header would silently overwrite the column it
        // collides with (both names map to the same AttrId, so the
        // arity check below cannot catch it).
        if mapping.contains(&id) {
            return Err(CsvError::Schema(format!(
                "duplicate header column `{name}` for relation `{}`",
                relation.name
            )));
        }
        mapping.push(id);
    }
    if mapping.len() != relation.arity() {
        return Err(CsvError::Schema(format!(
            "header has {} columns, relation `{}` has {}",
            mapping.len(),
            relation.name,
            relation.arity()
        )));
    }

    let mut inserted = 0usize;
    for (line_no, record) in records.iter().enumerate().skip(1) {
        if record.len() != mapping.len() {
            return Err(CsvError::Malformed {
                line: line_no + 1,
                message: format!(
                    "expected {} fields for relation `{}`, found {}",
                    mapping.len(),
                    relation.name,
                    record.len()
                ),
            });
        }
        let mut row = vec![Value::Null; relation.arity()];
        for (field, attr) in record.iter().zip(&mapping) {
            let domain = relation.attribute(*attr).domain;
            let v = match field {
                None => Value::Null,
                Some(text) => Value::parse_into(text, domain).ok_or_else(|| {
                    CsvError::Schema(format!(
                        "`{text}` does not fit {domain} (column `{}`, line {})",
                        relation.attr_name(*attr),
                        line_no + 1
                    ))
                })?,
            };
            row[attr.index()] = v;
        }
        db.insert(rel, row)?;
        inserted += 1;
    }
    Ok(inserted)
}

/// [`import_csv`] plus an immediate prewarm pass: the fresh extension
/// is interned into `engine`'s caches
/// ([`crate::stats::StatsEngine::prewarm`]) while it is still hot, so
/// the first statistics query after an import doesn't pay the build.
/// Purely an optimization — the caches invalidate themselves if the
/// table mutates again.
pub fn import_csv_with_stats(
    db: &mut Database,
    rel: RelId,
    text: &str,
    engine: &crate::stats::StatsEngine,
) -> Result<usize, CsvError> {
    let inserted = import_csv(db, rel, text)?;
    engine.prewarm(db, rel);
    Ok(inserted)
}

/// Serializes a table to CSV with a header. NULL becomes an unquoted
/// empty field; text is quoted whenever it needs to be.
pub fn export_csv(db: &Database, rel: RelId) -> String {
    let relation = db.schema.relation(rel);
    let table: &Table = db.table(rel);
    let mut out = String::new();
    let header: Vec<String> = relation
        .attributes()
        .iter()
        .map(|a| quote(&a.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for i in 0..table.len() {
        let fields: Vec<String> = (0..relation.arity())
            .map(|j| {
                let v = table.cell(i, AttrId(j as u16));
                match v {
                    Value::Null => String::new(),
                    Value::Str(s) => quote(s),
                    Value::Int(n) => n.to_string(),
                    Value::Float(x) => format!("{}", x.get()),
                    Value::Bool(b) => b.to_string(),
                    Value::Date(d) => d.to_string(),
                }
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.is_empty() || s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Relation;
    use crate::value::{Date, Domain};

    fn db() -> (Database, RelId) {
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of(
                "T",
                &[
                    ("id", Domain::Int),
                    ("name", Domain::Text),
                    ("when", Domain::Date),
                    ("score", Domain::Float),
                ],
            ))
            .unwrap();
        (db, rel)
    }

    #[test]
    fn roundtrip_with_nulls_and_quotes() {
        let (mut db, rel) = db();
        db.insert(
            rel,
            vec![
                Value::Int(1),
                Value::str("plain"),
                Value::Date(Date::parse("1996-02-29").unwrap()),
                Value::float(1.5),
            ],
        )
        .unwrap();
        db.insert(
            rel,
            vec![
                Value::Int(2),
                Value::str("comma, \"quote\"\nnewline"),
                Value::Null,
                Value::Null,
            ],
        )
        .unwrap();
        let csv = export_csv(&db, rel);
        let (mut db2, rel2) = super::tests::db();
        let n = import_csv(&mut db2, rel2, &csv).unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.table(rel), db2.table(rel2));
    }

    #[test]
    fn header_order_independent() {
        let (mut db, rel) = db();
        let n = import_csv(&mut db, rel, "name,id,score,when\nalice,7,2.5,1990-01-02\n").unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.table(rel).cell(0, AttrId(0)), &Value::Int(7));
        assert_eq!(db.table(rel).cell(0, AttrId(1)), &Value::str("alice"));
    }

    #[test]
    fn unquoted_empty_is_null_quoted_empty_is_empty_string() {
        let (mut db, rel) = db();
        import_csv(&mut db, rel, "id,name,when,score\n1,,,\n2,\"\",,\n").unwrap();
        assert_eq!(db.table(rel).cell(0, AttrId(1)), &Value::Null);
        assert_eq!(db.table(rel).cell(1, AttrId(1)), &Value::str(""));
    }

    #[test]
    fn errors_are_informative() {
        let (mut db, rel) = db();
        assert!(matches!(
            import_csv(&mut db, rel, "id,ghost,when,score\n"),
            Err(CsvError::Schema(_))
        ));
        assert!(matches!(
            import_csv(&mut db, rel, "id,name,when,score\n1,x\n"),
            Err(CsvError::Malformed { .. })
        ));
        assert!(matches!(
            import_csv(&mut db, rel, "id,name,when,score\nnot-an-int,x,,\n"),
            Err(CsvError::Schema(_))
        ));
        assert!(matches!(
            import_csv(&mut db, rel, "id,name\n"),
            Err(CsvError::Schema(_))
        ));
        assert!(matches!(
            parse_records("\"unterminated"),
            Err(CsvError::Malformed { .. })
        ));
    }

    #[test]
    fn crlf_and_trailing_newline_tolerated() {
        let (mut db, rel) = db();
        let n = import_csv(
            &mut db,
            rel,
            "id,name,when,score\r\n1,a,1990-01-01,0.5\r\n2,b,1990-01-02,1.5",
        )
        .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn leading_bom_is_stripped() {
        let (mut db, rel) = db();
        let n = import_csv(
            &mut db,
            rel,
            "\u{feff}id,name,when,score\n1,a,1990-01-01,0.5\n",
        )
        .unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.table(rel).cell(0, AttrId(0)), &Value::Int(1));
    }

    #[test]
    fn duplicate_header_rejected() {
        let (mut db, rel) = db();
        let err = import_csv(&mut db, rel, "id,id,when,score\n1,2,,\n").unwrap_err();
        let CsvError::Schema(msg) = err else {
            panic!("expected schema error, got {err:?}")
        };
        assert!(msg.contains("duplicate header column `id`"), "{msg}");
        assert!(msg.contains('T'), "{msg}");
        // Nothing was inserted.
        assert_eq!(db.table(rel).len(), 0);
    }

    #[test]
    fn arity_mismatch_names_line_and_relation() {
        let (mut db, rel) = db();
        let err = import_csv(
            &mut db,
            rel,
            "id,name,when,score\n1,a,1990-01-01,0.5\n2,b\n",
        )
        .unwrap_err();
        let CsvError::Malformed { line, message } = err else {
            panic!("expected malformed error, got {err:?}")
        };
        assert_eq!(line, 3);
        assert!(message.contains("relation `T`"), "{message}");
    }

    #[test]
    fn empty_text_imports_nothing() {
        let (mut db, rel) = db();
        assert_eq!(import_csv(&mut db, rel, "").unwrap(), 0);
    }

    #[test]
    fn import_with_stats_prewarms_the_dictionary() {
        use crate::stats::StatsEngine;
        let (mut db, rel) = db();
        let engine = StatsEngine::new();
        let n = import_csv_with_stats(
            &mut db,
            rel,
            "id,name,when,score\n1,a,1990-01-01,0.5\n2,b,1990-01-02,1.5\n",
            &engine,
        )
        .unwrap();
        assert_eq!(n, 2);
        let warmed = engine.counters();
        // The dictionary was built during import; the first count is a
        // cache hit on it, not a rebuild.
        engine.count_distinct(&db, rel, &[AttrId(0)]);
        assert!(engine.counters().cache_hits > warmed.cache_hits);
        assert_eq!(engine.count_distinct(&db, rel, &[AttrId(0)]), 2);
    }
}
