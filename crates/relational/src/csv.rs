//! CSV import/export for tables — how real reverse-engineering
//! engagements receive legacy extensions (dumps, not live DBMS
//! connections).
//!
//! The dialect is the common denominator: comma separator, `"`
//! quoting with `""` escape, first line is the header, empty unquoted
//! fields are `NULL`. Values are coerced into the declared domain of
//! the target relation.

use crate::attr::AttrId;
use crate::database::Database;
use crate::error::RelationalError;
use crate::pages::PageError;
use crate::schema::{RelId, Relation};
use crate::table::Table;
use crate::value::Value;
use std::fmt;
use std::io::Read;
use std::path::Path;

/// CSV errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// Structural problem in the text.
    Malformed {
        /// 1-based line.
        line: usize,
        /// Description.
        message: String,
    },
    /// Header/relation mismatch or value coercion failure.
    Schema(String),
    /// Bubbled-up relational error.
    Relational(RelationalError),
    /// I/O or paged-store failure on the streaming ingest path.
    Page(PageError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Malformed { line, message } => {
                write!(f, "malformed CSV at line {line}: {message}")
            }
            CsvError::Schema(m) => write!(f, "CSV schema error: {m}"),
            CsvError::Relational(e) => write!(f, "{e}"),
            CsvError::Page(e) => write!(f, "CSV ingest: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<RelationalError> for CsvError {
    fn from(e: RelationalError) -> Self {
        CsvError::Relational(e)
    }
}

impl From<PageError> for CsvError {
    fn from(e: PageError) -> Self {
        CsvError::Page(e)
    }
}

/// Chunk-fed CSV record parser — the single home of the dialect's
/// semantics, shared by the in-memory [`import_csv`] path (which feeds
/// it one big chunk) and the streaming [`import_csv_spilled`] path
/// (which feeds it file-sized reads). Byte chunks may split anywhere,
/// including mid-UTF-8-sequence and mid-`""` escape; state carries
/// across `feed` calls.
struct RecordParser {
    field: String,
    record: Vec<Option<String>>,
    /// Inside a quoted field.
    quoted: bool,
    /// Just saw a `"` inside a quoted field: the next char decides
    /// between a `""` escape and the field closing.
    pending_quote: bool,
    /// The field in progress was opened with a quote (quoted-empty is
    /// `Some("")`, not NULL).
    was_quoted: bool,
    /// 1-based source line, counting newlines inside quoted fields —
    /// structural errors point at real text positions.
    line: usize,
    /// Strip a UTF-8 BOM at the very start of the stream.
    strip_bom: bool,
    at_start: bool,
    /// Trailing bytes of an incomplete UTF-8 sequence at a chunk
    /// boundary (at most 3).
    stash: Vec<u8>,
}

impl RecordParser {
    fn new(strip_bom: bool) -> Self {
        RecordParser {
            field: String::new(),
            record: Vec::new(),
            quoted: false,
            pending_quote: false,
            was_quoted: false,
            line: 1,
            strip_bom,
            at_start: true,
            stash: Vec::new(),
        }
    }

    fn invalid_utf8(&self) -> CsvError {
        CsvError::Malformed {
            line: self.line,
            message: "invalid UTF-8".into(),
        }
    }

    fn end_field(&mut self) {
        if self.field.is_empty() && !self.was_quoted {
            self.record.push(None);
        } else {
            self.record.push(Some(std::mem::take(&mut self.field)));
        }
        self.was_quoted = false;
    }

    /// Ends the current record, emitting it unless it is a blank line
    /// (a single NULL field).
    fn end_record(
        &mut self,
        emit: &mut impl FnMut(Vec<Option<String>>) -> Result<(), CsvError>,
    ) -> Result<(), CsvError> {
        self.end_field();
        if self.record.len() == 1 && self.record[0].is_none() {
            self.record.clear();
            Ok(())
        } else {
            emit(std::mem::take(&mut self.record))
        }
    }

    fn process_char(
        &mut self,
        c: char,
        emit: &mut impl FnMut(Vec<Option<String>>) -> Result<(), CsvError>,
    ) -> Result<(), CsvError> {
        if self.at_start {
            self.at_start = false;
            if self.strip_bom && c == '\u{feff}' {
                return Ok(());
            }
        }
        if self.quoted {
            if self.pending_quote {
                self.pending_quote = false;
                if c == '"' {
                    self.field.push('"');
                    return Ok(());
                }
                // The quote we saw closed the field; `c` continues in
                // unquoted context below.
                self.quoted = false;
            } else {
                match c {
                    '"' => self.pending_quote = true,
                    '\n' => {
                        self.line += 1;
                        self.field.push('\n');
                    }
                    other => self.field.push(other),
                }
                return Ok(());
            }
        }
        match c {
            '"' => {
                if !self.field.is_empty() {
                    return Err(CsvError::Malformed {
                        line: self.line,
                        message: "quote inside unquoted field".into(),
                    });
                }
                self.quoted = true;
                self.was_quoted = true;
            }
            ',' => self.end_field(),
            '\r' => {}
            '\n' => {
                self.end_record(emit)?;
                self.line += 1;
            }
            other => self.field.push(other),
        }
        Ok(())
    }

    fn process_str(
        &mut self,
        s: &str,
        emit: &mut impl FnMut(Vec<Option<String>>) -> Result<(), CsvError>,
    ) -> Result<(), CsvError> {
        for c in s.chars() {
            self.process_char(c, emit)?;
        }
        Ok(())
    }

    /// Feeds one byte chunk, emitting every record it completes.
    fn feed(
        &mut self,
        mut chunk: &[u8],
        emit: &mut impl FnMut(Vec<Option<String>>) -> Result<(), CsvError>,
    ) -> Result<(), CsvError> {
        // Complete a UTF-8 sequence split at the previous boundary.
        while !self.stash.is_empty() && !chunk.is_empty() {
            self.stash.push(chunk[0]);
            chunk = &chunk[1..];
            match std::str::from_utf8(&self.stash) {
                Ok(s) => {
                    let owned = s.to_string();
                    self.stash.clear();
                    self.process_str(&owned, emit)?;
                    break;
                }
                Err(e) if e.error_len().is_some() || self.stash.len() >= 4 => {
                    return Err(self.invalid_utf8());
                }
                Err(_) => {} // still incomplete, keep pulling bytes
            }
        }
        match std::str::from_utf8(chunk) {
            Ok(s) => self.process_str(s, emit),
            Err(e) => {
                let (valid, rest) = chunk.split_at(e.valid_up_to());
                // Safe decode of the checked prefix without unsafe:
                // from_utf8 on `valid` cannot fail.
                if let Ok(s) = std::str::from_utf8(valid) {
                    self.process_str(s, emit)?;
                }
                if e.error_len().is_some() {
                    return Err(self.invalid_utf8());
                }
                self.stash.extend_from_slice(rest);
                Ok(())
            }
        }
    }

    /// Ends the stream: flushes the final record (no trailing newline
    /// required) and rejects unterminated quotes or a dangling partial
    /// UTF-8 sequence.
    fn finish(
        mut self,
        emit: &mut impl FnMut(Vec<Option<String>>) -> Result<(), CsvError>,
    ) -> Result<(), CsvError> {
        if !self.stash.is_empty() {
            return Err(self.invalid_utf8());
        }
        if self.pending_quote {
            // A closing quote was the last char of the stream.
            self.quoted = false;
            self.pending_quote = false;
        }
        if self.quoted {
            return Err(CsvError::Malformed {
                line: self.line,
                message: "unterminated quoted field".into(),
            });
        }
        if !self.field.is_empty() || self.was_quoted || !self.record.is_empty() {
            self.end_record(emit)?;
        }
        Ok(())
    }
}

/// Splits CSV text into records of raw fields. `None` fields are
/// unquoted-empty (→ NULL); quoted-empty stays `Some("")`.
fn parse_records(text: &str) -> Result<Vec<Vec<Option<String>>>, CsvError> {
    let mut records = Vec::new();
    let mut emit = |r: Vec<Option<String>>| {
        records.push(r);
        Ok(())
    };
    let mut p = RecordParser::new(false);
    p.feed(text.as_bytes(), &mut emit)?;
    p.finish(&mut emit)?;
    Ok(records)
}

/// Resolves a header record against `relation`: every attribute named
/// exactly once, any order. Returns the CSV-position → attribute map.
fn header_mapping(relation: &Relation, header: &[Option<String>]) -> Result<Vec<AttrId>, CsvError> {
    let mut mapping: Vec<AttrId> = Vec::with_capacity(header.len());
    for (i, h) in header.iter().enumerate() {
        let name = h
            .as_deref()
            .ok_or_else(|| CsvError::Schema(format!("empty header field at position {}", i + 1)))?;
        let id = relation.attr_id(name).ok_or_else(|| {
            CsvError::Schema(format!(
                "header column `{name}` not in relation `{}`",
                relation.name
            ))
        })?;
        // A duplicate header would silently overwrite the column it
        // collides with (both names map to the same AttrId, so the
        // arity check below cannot catch it).
        if mapping.contains(&id) {
            return Err(CsvError::Schema(format!(
                "duplicate header column `{name}` for relation `{}`",
                relation.name
            )));
        }
        mapping.push(id);
    }
    if mapping.len() != relation.arity() {
        return Err(CsvError::Schema(format!(
            "header has {} columns, relation `{}` has {}",
            mapping.len(),
            relation.name,
            relation.arity()
        )));
    }
    Ok(mapping)
}

/// Loads CSV text into an existing relation. The header must name the
/// relation's attributes (any order); values are coerced per the
/// declared domains; unquoted-empty fields become NULL.
pub fn import_csv(db: &mut Database, rel: RelId, text: &str) -> Result<usize, CsvError> {
    // Tolerate a leading UTF-8 byte-order mark (Excel and Windows
    // exports routinely prepend one); without this the first header
    // column would never resolve.
    let text = text.strip_prefix('\u{feff}').unwrap_or(text);
    let records = parse_records(text)?;
    let Some(header) = records.first() else {
        return Ok(0);
    };
    let relation = db.schema.relation(rel).clone();
    let mapping = header_mapping(&relation, header)?;

    let mut inserted = 0usize;
    for (line_no, record) in records.iter().enumerate().skip(1) {
        if record.len() != mapping.len() {
            return Err(CsvError::Malformed {
                line: line_no + 1,
                message: format!(
                    "expected {} fields for relation `{}`, found {}",
                    mapping.len(),
                    relation.name,
                    record.len()
                ),
            });
        }
        let mut row = vec![Value::Null; relation.arity()];
        for (field, attr) in record.iter().zip(&mapping) {
            let domain = relation.attribute(*attr).domain;
            let v = match field {
                None => Value::Null,
                Some(text) => Value::parse_into(text, domain).ok_or_else(|| {
                    CsvError::Schema(format!(
                        "`{text}` does not fit {domain} (column `{}`, line {})",
                        relation.attr_name(*attr),
                        line_no + 1
                    ))
                })?,
            };
            row[attr.index()] = v;
        }
        db.insert(rel, row)?;
        inserted += 1;
    }
    Ok(inserted)
}

/// [`import_csv`] plus an immediate prewarm pass: the fresh extension
/// is interned into `engine`'s caches
/// ([`crate::stats::StatsEngine::prewarm`]) while it is still hot, so
/// the first statistics query after an import doesn't pay the build.
/// Purely an optimization — the caches invalidate themselves if the
/// table mutates again.
pub fn import_csv_with_stats(
    db: &mut Database,
    rel: RelId,
    text: &str,
    engine: &crate::stats::StatsEngine,
) -> Result<usize, CsvError> {
    let inserted = import_csv(db, rel, text)?;
    engine.prewarm(db, rel);
    Ok(inserted)
}

/// Streaming ingest: encodes a CSV file straight into paged spill
/// files — dictionary interning and page writes happen per record, so
/// peak memory is one 64 KiB chunk, the parser state, and the (per
/// column) dictionary + one partial page. No `Table` and no full code
/// vector ever materialize; the relation in `db` becomes a *streamed
/// extension* that knows its row count but holds no values.
///
/// With a `spill_dir`, the encoded pages and dictionaries persist
/// under a schema+content cache key ([`crate::spill`]); a warm rerun
/// over the same file skips parsing and encoding entirely
/// (`from_cache` on the returned table). Corrupt or stale entries
/// degrade to a re-encode that overwrites them.
///
/// Field semantics, coercion and error reporting are byte-identical
/// to [`import_csv`] — both run on the same [`RecordParser`] — with
/// one accepted divergence: this path surfaces the *first* record's
/// error in stream order, while [`import_csv`] parses everything
/// before coercing (so a late structural error can mask an early
/// coercion error there).
///
/// Constraint checking (`K`, `N`) does not happen here — rows never
/// pass through [`Database::insert`]. Callers run
/// [`crate::spill::validate_spilled`] on the result.
pub fn import_csv_spilled(
    db: &mut Database,
    rel: RelId,
    path: &Path,
    spill_dir: Option<&Path>,
) -> Result<crate::spill::SpilledTable, CsvError> {
    use crate::encode::DictBuilder;
    use crate::pages::PageFileWriter;

    let relation = db.schema.relation(rel).clone();
    {
        let t = db.table(rel);
        if !t.is_empty() || !t.is_materialized() {
            return Err(CsvError::Schema(format!(
                "streaming ingest needs an empty relation, `{}` already has rows",
                relation.name
            )));
        }
    }

    // Warm path: a committed cache entry keyed by schema + content.
    let entry = match spill_dir {
        Some(dir) => {
            let content = crate::spill::hash_file(path)?;
            let key = crate::spill::cache_key(&relation, content);
            Some(crate::spill::entry_dir(dir, &key))
        }
        None => None,
    };
    if let Some(dir) = &entry {
        if let Some(t) = crate::spill::load_entry(dir, relation.arity()) {
            db.set_streamed_extension(rel, t.rows());
            return Ok(t);
        }
    }

    // Cold path. Writers go to the cache entry when there is one
    // (truncating stale files), to owned temp files otherwise.
    let cleanup = |writers: Vec<PageFileWriter>| {
        for w in writers {
            let p = w.path().to_path_buf();
            drop(w);
            let _ = std::fs::remove_file(p);
        }
    };
    if let Some(dir) = &entry {
        std::fs::create_dir_all(dir).map_err(|e| PageError::Io(e.to_string()))?;
        crate::spill::invalidate_entry(dir);
    }
    let mut writers: Vec<PageFileWriter> = Vec::with_capacity(relation.arity());
    for i in 0..relation.arity() {
        let w = match &entry {
            Some(dir) => PageFileWriter::create_at(&crate::spill::pages_path(dir, i)),
            None => PageFileWriter::create_temp(),
        };
        match w {
            Ok(w) => writers.push(w),
            Err(e) => {
                cleanup(writers);
                return Err(e.into());
            }
        }
    }
    let mut builders: Vec<DictBuilder> =
        (0..relation.arity()).map(|_| DictBuilder::new()).collect();

    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            cleanup(writers);
            return Err(PageError::Io(e.to_string()).into());
        }
    };
    let rows = match encode_stream(&relation, &mut file, &mut writers, &mut builders) {
        Ok(rows) => rows,
        Err(e) => {
            cleanup(writers);
            return Err(e);
        }
    };

    let mut columns = Vec::with_capacity(relation.arity());
    let mut builders = builders.into_iter();
    let mut writers_iter = writers.into_iter();
    while let (Some(w), Some(b)) = (writers_iter.next(), builders.next()) {
        match w.finish() {
            Ok(file) => {
                let dict = std::sync::Arc::new(b.finish_slim());
                columns.push(std::sync::Arc::new(crate::pages::PagedColumn::new(
                    dict, file,
                )));
            }
            Err(e) => {
                // Unwind: the finished PagedColumns for cache entries
                // are durable files; remove them alongside the
                // unfinished writers.
                for c in &columns {
                    let _ = std::fs::remove_file(c.file().path());
                }
                cleanup(writers_iter.collect());
                return Err(e.into());
            }
        }
    }

    if let Some(dir) = &entry {
        let commit = columns
            .iter()
            .enumerate()
            .try_for_each(|(i, c)| crate::spill::write_dict(dir, i, c.dict()))
            .and_then(|()| crate::spill::write_manifest(dir, rows, relation.arity()));
        // A failed commit leaves no manifest: the entry is invisible
        // to future runs, and this run still has its valid columns.
        let _ = commit;
    }

    db.set_streamed_extension(rel, rows);
    Ok(crate::spill::SpilledTable::new(columns, rows, false))
}

/// The parse/intern/spill loop of [`import_csv_spilled`]: reads the
/// file in 64 KiB chunks, resolves the header from the first record,
/// then encodes each record straight into the per-column dictionary
/// builders and page writers. Returns the data row count.
fn encode_stream(
    relation: &Relation,
    file: &mut std::fs::File,
    writers: &mut [crate::pages::PageFileWriter],
    builders: &mut [crate::encode::DictBuilder],
) -> Result<usize, CsvError> {
    let mut parser = RecordParser::new(true);
    let mut mapping: Option<Vec<AttrId>> = None;
    // Records seen so far, header included — so for record N the
    // 1-based source line of its terminator is N+1 only in the
    // newline-free sense; error lines here are *record* lines, the
    // same convention `import_csv` uses.
    let mut records = 0usize;
    let mut on_record = |record: Vec<Option<String>>| -> Result<(), CsvError> {
        records += 1;
        let Some(map) = &mapping else {
            mapping = Some(header_mapping(relation, &record)?);
            return Ok(());
        };
        if record.len() != map.len() {
            return Err(CsvError::Malformed {
                line: records,
                message: format!(
                    "expected {} fields for relation `{}`, found {}",
                    map.len(),
                    relation.name,
                    record.len()
                ),
            });
        }
        for (field, attr) in record.iter().zip(map) {
            let domain = relation.attribute(*attr).domain;
            let v = match field {
                None => Value::Null,
                Some(text) => Value::parse_into(text, domain).ok_or_else(|| {
                    CsvError::Schema(format!(
                        "`{text}` does not fit {domain} (column `{}`, line {})",
                        relation.attr_name(*attr),
                        records
                    ))
                })?,
            };
            let code = builders[attr.index()].intern(&v);
            writers[attr.index()].push(code)?;
        }
        Ok(())
    };
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = file
            .read(&mut buf)
            .map_err(|e| PageError::Io(e.to_string()))?;
        if n == 0 {
            break;
        }
        parser.feed(&buf[..n], &mut on_record)?;
    }
    parser.finish(&mut on_record)?;
    Ok(records.saturating_sub(1))
}

/// Serializes a table to CSV with a header. NULL becomes an unquoted
/// empty field; text is quoted whenever it needs to be.
pub fn export_csv(db: &Database, rel: RelId) -> String {
    let relation = db.schema.relation(rel);
    let table: &Table = db.table(rel);
    let mut out = String::new();
    let header: Vec<String> = relation
        .attributes()
        .iter()
        .map(|a| quote(&a.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for i in 0..table.len() {
        let fields: Vec<String> = (0..relation.arity())
            .map(|j| {
                let v = table.cell(i, AttrId(j as u16));
                match v {
                    Value::Null => String::new(),
                    Value::Str(s) => quote(s),
                    Value::Int(n) => n.to_string(),
                    Value::Float(x) => format!("{}", x.get()),
                    Value::Bool(b) => b.to_string(),
                    Value::Date(d) => d.to_string(),
                }
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.is_empty() || s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Relation;
    use crate::value::{Date, Domain};

    fn db() -> (Database, RelId) {
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of(
                "T",
                &[
                    ("id", Domain::Int),
                    ("name", Domain::Text),
                    ("when", Domain::Date),
                    ("score", Domain::Float),
                ],
            ))
            .unwrap();
        (db, rel)
    }

    #[test]
    fn roundtrip_with_nulls_and_quotes() {
        let (mut db, rel) = db();
        db.insert(
            rel,
            vec![
                Value::Int(1),
                Value::str("plain"),
                Value::Date(Date::parse("1996-02-29").unwrap()),
                Value::float(1.5),
            ],
        )
        .unwrap();
        db.insert(
            rel,
            vec![
                Value::Int(2),
                Value::str("comma, \"quote\"\nnewline"),
                Value::Null,
                Value::Null,
            ],
        )
        .unwrap();
        let csv = export_csv(&db, rel);
        let (mut db2, rel2) = super::tests::db();
        let n = import_csv(&mut db2, rel2, &csv).unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.table(rel), db2.table(rel2));
    }

    #[test]
    fn header_order_independent() {
        let (mut db, rel) = db();
        let n = import_csv(&mut db, rel, "name,id,score,when\nalice,7,2.5,1990-01-02\n").unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.table(rel).cell(0, AttrId(0)), &Value::Int(7));
        assert_eq!(db.table(rel).cell(0, AttrId(1)), &Value::str("alice"));
    }

    #[test]
    fn unquoted_empty_is_null_quoted_empty_is_empty_string() {
        let (mut db, rel) = db();
        import_csv(&mut db, rel, "id,name,when,score\n1,,,\n2,\"\",,\n").unwrap();
        assert_eq!(db.table(rel).cell(0, AttrId(1)), &Value::Null);
        assert_eq!(db.table(rel).cell(1, AttrId(1)), &Value::str(""));
    }

    #[test]
    fn errors_are_informative() {
        let (mut db, rel) = db();
        assert!(matches!(
            import_csv(&mut db, rel, "id,ghost,when,score\n"),
            Err(CsvError::Schema(_))
        ));
        assert!(matches!(
            import_csv(&mut db, rel, "id,name,when,score\n1,x\n"),
            Err(CsvError::Malformed { .. })
        ));
        assert!(matches!(
            import_csv(&mut db, rel, "id,name,when,score\nnot-an-int,x,,\n"),
            Err(CsvError::Schema(_))
        ));
        assert!(matches!(
            import_csv(&mut db, rel, "id,name\n"),
            Err(CsvError::Schema(_))
        ));
        assert!(matches!(
            parse_records("\"unterminated"),
            Err(CsvError::Malformed { .. })
        ));
    }

    #[test]
    fn crlf_and_trailing_newline_tolerated() {
        let (mut db, rel) = db();
        let n = import_csv(
            &mut db,
            rel,
            "id,name,when,score\r\n1,a,1990-01-01,0.5\r\n2,b,1990-01-02,1.5",
        )
        .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn leading_bom_is_stripped() {
        let (mut db, rel) = db();
        let n = import_csv(
            &mut db,
            rel,
            "\u{feff}id,name,when,score\n1,a,1990-01-01,0.5\n",
        )
        .unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.table(rel).cell(0, AttrId(0)), &Value::Int(1));
    }

    #[test]
    fn duplicate_header_rejected() {
        let (mut db, rel) = db();
        let err = import_csv(&mut db, rel, "id,id,when,score\n1,2,,\n").unwrap_err();
        let CsvError::Schema(msg) = err else {
            panic!("expected schema error, got {err:?}")
        };
        assert!(msg.contains("duplicate header column `id`"), "{msg}");
        assert!(msg.contains('T'), "{msg}");
        // Nothing was inserted.
        assert_eq!(db.table(rel).len(), 0);
    }

    #[test]
    fn arity_mismatch_names_line_and_relation() {
        let (mut db, rel) = db();
        let err = import_csv(
            &mut db,
            rel,
            "id,name,when,score\n1,a,1990-01-01,0.5\n2,b\n",
        )
        .unwrap_err();
        let CsvError::Malformed { line, message } = err else {
            panic!("expected malformed error, got {err:?}")
        };
        assert_eq!(line, 3);
        assert!(message.contains("relation `T`"), "{message}");
    }

    #[test]
    fn empty_text_imports_nothing() {
        let (mut db, rel) = db();
        assert_eq!(import_csv(&mut db, rel, "").unwrap(), 0);
    }

    /// Feeds `text` through the chunk parser at every chunk size from
    /// 1 byte upward — any state the parser fails to carry across a
    /// boundary shows up as a diff against the one-shot parse.
    #[test]
    fn record_parser_is_chunk_size_invariant() {
        let text = "a,\"b\"\"x\n y\",c\r\n,\"\",naïve→ü\n\nlast,1,2";
        let whole = parse_records(text).unwrap();
        assert_eq!(whole.len(), 3, "blank line must vanish");
        for chunk in 1..=text.len() {
            let mut records = Vec::new();
            let mut emit = |r: Vec<Option<String>>| {
                records.push(r);
                Ok(())
            };
            let mut p = RecordParser::new(false);
            for piece in text.as_bytes().chunks(chunk) {
                p.feed(piece, &mut emit).unwrap();
            }
            p.finish(&mut emit).unwrap();
            assert_eq!(records, whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn record_parser_rejects_invalid_utf8() {
        let mut p = RecordParser::new(false);
        let mut emit = |_| Ok(());
        // 0xff can never start a UTF-8 sequence.
        assert!(matches!(
            p.feed(b"ok,\xff", &mut emit),
            Err(CsvError::Malformed { .. })
        ));
        // A dangling partial sequence at EOF is also malformed.
        let mut p = RecordParser::new(false);
        p.feed("é".as_bytes().split_at(1).0, &mut emit).unwrap();
        assert!(matches!(
            p.finish(&mut emit),
            Err(CsvError::Malformed { .. })
        ));
    }

    fn write_temp_csv(tag: &str, text: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("dbre-csv-{}-{tag}.csv", std::process::id()));
        std::fs::write(&p, text).unwrap();
        p
    }

    #[test]
    fn spilled_ingest_matches_materialized_encode() {
        use crate::encode::ColumnDict;
        use crate::pages::PageFile;

        let text = "\u{feff}id,name,when,score\n\
                    1,alice,1990-01-02,0.5\n\
                    2,\"b,\"\"c\"\"\",,-1.5\n\
                    3,,1996-02-29,\n\
                    1,alice,1990-01-02,0.5\n";
        let path = write_temp_csv("diff", text);

        let (mut mem_db, mem_rel) = db();
        import_csv(&mut mem_db, mem_rel, text).unwrap();

        let (mut db2, rel2) = db();
        let spilled = import_csv_spilled(&mut db2, rel2, &path, None).unwrap();
        assert_eq!(spilled.rows(), 4);
        assert!(!spilled.from_cache());
        assert!(!db2.table(rel2).is_materialized());
        assert_eq!(db2.table(rel2).len(), 4);

        // Per column: identical dictionary and byte-identical pages
        // versus materialize-then-spill.
        for (i, col) in spilled.columns().iter().enumerate() {
            let direct = ColumnDict::build(mem_db.table(mem_rel).column(AttrId(i as u16)));
            assert_eq!(
                col.dict().distinct_values(),
                direct.distinct_values(),
                "col {i}"
            );
            assert_eq!(col.dict().null_count(), direct.null_count(), "col {i}");
            assert_eq!(col.dict().code_counts(), direct.code_counts(), "col {i}");
            let twin = PageFile::spill(direct.codes()).unwrap();
            assert_eq!(
                std::fs::read(col.file().path()).unwrap(),
                std::fs::read(twin.path()).unwrap(),
                "col {i} pages"
            );
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn spilled_ingest_uses_and_fills_the_cache() {
        let text = "id,name,when,score\n7,x,,2.5\n8,y,1990-01-01,\n";
        let path = write_temp_csv("cache", text);
        let cache = std::env::temp_dir().join(format!("dbre-csv-cachedir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache);

        let (mut db1, rel1) = db();
        let cold = import_csv_spilled(&mut db1, rel1, &path, Some(&cache)).unwrap();
        assert!(!cold.from_cache());
        assert_eq!(cold.rows(), 2);

        let (mut db2, rel2) = db();
        let warm = import_csv_spilled(&mut db2, rel2, &path, Some(&cache)).unwrap();
        assert!(warm.from_cache(), "second run must hit the cache");
        assert_eq!(warm.rows(), 2);
        for (c, w) in cold.columns().iter().zip(warm.columns()) {
            assert_eq!(c.dict().distinct_values(), w.dict().distinct_values());
            assert_eq!(c.dict().code_counts(), w.dict().code_counts());
        }

        // Touching the source content moves the key: miss, re-encode.
        std::fs::write(&path, text.replace("7,x", "9,z")).unwrap();
        let (mut db3, rel3) = db();
        let moved = import_csv_spilled(&mut db3, rel3, &path, Some(&cache)).unwrap();
        assert!(!moved.from_cache(), "changed content must miss");

        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_dir_all(cache);
    }

    #[test]
    fn spilled_ingest_error_parity_with_import() {
        // Streaming surfaces errors in stream order; on these inputs
        // (single defect each) both paths must agree on the error.
        for bad in [
            "id,name,when,score\n1,a\n",            // arity
            "id,name,when,score\nnot-an-int,a,,\n", // coercion
            "id,name,when,score\n1,\"open\n",       // unterminated
            "id,ghost,when,score\n1,a,,\n",         // unknown header
            "id,id,when,score\n1,a,,\n",            // duplicate header
        ] {
            let (mut mdb, mrel) = db();
            let mem = import_csv(&mut mdb, mrel, bad).unwrap_err();
            let path = write_temp_csv("err", bad);
            let (mut sdb, srel) = db();
            let streamed = import_csv_spilled(&mut sdb, srel, &path, None).unwrap_err();
            assert_eq!(
                std::mem::discriminant(&mem),
                std::mem::discriminant(&streamed),
                "{bad:?}: {mem:?} vs {streamed:?}"
            );
            // A failed streamed ingest must leave the table untouched
            // and materialized (usable for a retry).
            assert!(sdb.table(srel).is_materialized());
            assert_eq!(sdb.table(srel).len(), 0);
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn import_with_stats_prewarms_the_dictionary() {
        use crate::stats::StatsEngine;
        let (mut db, rel) = db();
        let engine = StatsEngine::new();
        let n = import_csv_with_stats(
            &mut db,
            rel,
            "id,name,when,score\n1,a,1990-01-01,0.5\n2,b,1990-01-02,1.5\n",
            &engine,
        )
        .unwrap();
        assert_eq!(n, 2);
        let warmed = engine.counters();
        // The dictionary was built during import; the first count is a
        // cache hit on it, not a rebuild.
        engine.count_distinct(&db, rel, &[AttrId(0)]);
        assert!(engine.counters().cache_hits > warmed.cache_hits);
        assert_eq!(engine.count_distinct(&db, rel, &[AttrId(0)]), 2);
    }
}
