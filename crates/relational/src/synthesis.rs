//! Bernstein's 3NF synthesis — the *classical* normalization baseline.
//!
//! The paper argues (§3, citing Markowitz–Makowsky) that blindly
//! normalizing with *all* FDs that hold in the data can produce schemas
//! that do not match the application's objects; its method instead
//! selects only the FDs that programs *navigate*. We implement textbook
//! synthesis so the benchmark harness can compare both restructurings
//! on the same inputs (experiment X3/X5 territory).
//!
//! Algorithm (Bernstein 1976, as in Ullman's *Principles of Database
//! Systems*):
//!
//! 1. compute a minimal cover of the FD set;
//! 2. group FDs by left-hand side; each group becomes a relation
//!    `(X, attrs determined by X)` with key `X`;
//! 3. if no relation contains a candidate key of the universe, add one;
//! 4. drop relations whose attribute set is contained in another's.

use crate::attr::AttrSet;
use crate::deps::Fd;
use crate::fd_theory::{candidate_keys, minimal_cover};
use crate::schema::RelId;

/// One synthesized relation scheme: attribute set plus its key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthScheme {
    /// All attributes of the scheme.
    pub attrs: AttrSet,
    /// The key (the grouped LHS, or the added candidate key).
    pub key: AttrSet,
}

/// Synthesizes a 3NF decomposition of `universe` under `fds`.
///
/// Returns schemes in deterministic order (sorted by key then attrs).
pub fn synthesize_3nf(rel: RelId, universe: &AttrSet, fds: &[Fd]) -> Vec<SynthScheme> {
    let cover = minimal_cover(fds);

    // Group singleton-RHS FDs by LHS.
    let mut groups: Vec<(AttrSet, AttrSet)> = Vec::new();
    for fd in &cover {
        match groups.iter_mut().find(|(lhs, _)| lhs == &fd.lhs) {
            Some((_, rhs)) => *rhs = rhs.union(&fd.rhs),
            None => groups.push((fd.lhs.clone(), fd.rhs.clone())),
        }
    }

    let mut schemes: Vec<SynthScheme> = groups
        .into_iter()
        .map(|(lhs, rhs)| SynthScheme {
            attrs: lhs.union(&rhs),
            key: lhs,
        })
        .collect();

    // Ensure some scheme contains a candidate key of the universe.
    let keys = candidate_keys(rel, universe, &cover);
    let has_global_key = schemes
        .iter()
        .any(|s| keys.iter().any(|k| k.is_subset(&s.attrs)));
    if !has_global_key {
        let k = keys.first().cloned().unwrap_or_else(|| universe.clone());
        schemes.push(SynthScheme {
            attrs: k.clone(),
            key: k,
        });
    }

    // Also cover attributes mentioned in no FD (they must appear
    // somewhere; standard practice attaches them to the key scheme).
    let covered = schemes
        .iter()
        .fold(AttrSet::empty(), |acc, s| acc.union(&s.attrs));
    let loose = universe.difference(&covered);
    if !loose.is_empty() {
        // Attach to (or create) the global-key scheme.
        if let Some(scheme) = schemes
            .iter_mut()
            .find(|s| keys.iter().any(|k| k.is_subset(&s.attrs)))
        {
            scheme.attrs = scheme.attrs.union(&loose);
        } else {
            schemes.push(SynthScheme {
                attrs: loose.clone(),
                key: loose,
            });
        }
    }

    // Remove schemes embedded in another scheme.
    let mut i = 0;
    while i < schemes.len() {
        let embedded = schemes
            .iter()
            .enumerate()
            .any(|(j, other)| j != i && schemes[i].attrs.is_subset(&other.attrs));
        if embedded {
            schemes.remove(i);
        } else {
            i += 1;
        }
    }

    schemes.sort_by(|a, b| a.key.cmp(&b.key).then(a.attrs.cmp(&b.attrs)));
    schemes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd_theory::implies;
    use crate::normal_forms::is_3nf;

    const R: RelId = RelId(0);

    fn s(ids: &[u16]) -> AttrSet {
        AttrSet::from_indices(ids.iter().copied())
    }

    fn fd(lhs: &[u16], rhs: &[u16]) -> Fd {
        Fd::new(R, s(lhs), s(rhs))
    }

    #[test]
    fn textbook_example() {
        // R(a,b,c), a -> b, b -> c  =>  (ab key a), (bc key b).
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2])];
        let schemes = synthesize_3nf(R, &s(&[0, 1, 2]), &fds);
        assert_eq!(schemes.len(), 2);
        assert!(schemes
            .iter()
            .any(|x| x.attrs == s(&[0, 1]) && x.key == s(&[0])));
        assert!(schemes
            .iter()
            .any(|x| x.attrs == s(&[1, 2]) && x.key == s(&[1])));
    }

    #[test]
    fn adds_global_key_scheme_when_missing() {
        // R(a,b,c), b -> c : groups give (bc); key {a,b} must be added.
        let fds = vec![fd(&[1], &[2])];
        let schemes = synthesize_3nf(R, &s(&[0, 1, 2]), &fds);
        assert!(schemes.iter().any(|x| s(&[0, 1]).is_subset(&x.attrs)));
    }

    #[test]
    fn attaches_loose_attributes() {
        // R(a,b,c,d), a -> b : c,d in no FD; must still be covered.
        let fds = vec![fd(&[0], &[1])];
        let schemes = synthesize_3nf(R, &s(&[0, 1, 2, 3]), &fds);
        let covered = schemes
            .iter()
            .fold(AttrSet::empty(), |acc, x| acc.union(&x.attrs));
        assert_eq!(covered, s(&[0, 1, 2, 3]));
    }

    #[test]
    fn drops_embedded_schemes() {
        // a -> bc and b -> c produce (abc) and (bc); (bc) is embedded.
        // (minimal cover removes a->c, so groups are (ab),(bc): both stay)
        // Force embedding instead with duplicate-ish FDs:
        let fds = vec![fd(&[0], &[1, 2]), fd(&[0, 1], &[2])];
        let schemes = synthesize_3nf(R, &s(&[0, 1, 2]), &fds);
        for (i, a) in schemes.iter().enumerate() {
            for (j, b) in schemes.iter().enumerate() {
                if i != j {
                    assert!(!a.attrs.is_subset(&b.attrs));
                }
            }
        }
    }

    #[test]
    fn result_schemes_are_3nf_and_dependency_preserving() {
        // Department-style: dep -> emp skill loc proj ; emp -> skill proj.
        let universe = s(&[0, 1, 2, 3, 4]);
        let fds = vec![fd(&[0], &[1, 2, 3, 4]), fd(&[1], &[2, 4])];
        let schemes = synthesize_3nf(R, &universe, &fds);
        // Each scheme is in 3NF w.r.t. the projected dependencies.
        for scheme in &schemes {
            let proj = crate::fd_theory::project_fds(R, &fds, &scheme.attrs);
            assert!(is_3nf(R, &scheme.attrs, &proj), "scheme {scheme:?} not 3NF");
        }
        // Dependency preservation: every original FD implied by the union
        // of projected FDs.
        let mut all: Vec<Fd> = Vec::new();
        for scheme in &schemes {
            all.extend(crate::fd_theory::project_fds(R, &fds, &scheme.attrs));
        }
        for f in &fds {
            assert!(implies(&all, f), "dependency {f:?} lost");
        }
    }

    #[test]
    fn no_fds_yields_single_universe_scheme() {
        let schemes = synthesize_3nf(R, &s(&[0, 1]), &[]);
        assert_eq!(schemes.len(), 1);
        assert_eq!(schemes[0].attrs, s(&[0, 1]));
        assert_eq!(schemes[0].key, s(&[0, 1]));
    }
}
