//! The relational database `(R, E, Δ)` plus the dictionary constraints.

use crate::attr::{AttrId, AttrSet};
use crate::deps::{Constraints, Dependencies, Fd, Ind};
use crate::error::RelationalError;
use crate::schema::{RelId, Relation, Schema};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-global generation allocator. Every table-version tag is
/// drawn from here, so a generation identifies one table version
/// *across every `Database` clone in the process* — two sessions that
/// diverge from the same snapshot can never alias each other's cache
/// entries, which is what lets them share one
/// [`crate::stats::StatsEngine`].
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

fn fresh_gen() -> u64 {
    NEXT_GEN.fetch_add(1, Ordering::Relaxed)
}

/// A relational database: schema `R`, extension `E` (one [`Table`] per
/// relation), dictionary constraints (`K`, `N`) and elicited
/// dependencies `Δ`.
///
/// Tables sit behind [`Arc`], so cloning a database (the snapshot
/// path, [`crate::snapshot`]) is O(relations) and mutation is
/// copy-on-write per table.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// The schema `R`.
    pub schema: Schema,
    tables: Vec<Arc<Table>>,
    /// Per-table generation tags, reassigned (from the process-global
    /// allocator) on every (potential) extension mutation.
    /// [`crate::stats::StatsEngine`] keys its caches on these so a
    /// cached count is never served after the underlying table
    /// changed.
    gens: Vec<u64>,
    /// Dictionary constraints `K` and `N`.
    pub constraints: Constraints,
    /// Dependency set `Δ` (starts empty — the point of the paper).
    pub deps: Dependencies,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds a relation with an empty extension.
    pub fn add_relation(&mut self, rel: Relation) -> Result<RelId, RelationalError> {
        let arity = rel.arity();
        let id = self.schema.add_relation(rel)?;
        self.tables.push(Arc::new(Table::new(arity)));
        self.gens.push(fresh_gen());
        Ok(id)
    }

    /// Adds a relation together with a prepared extension.
    pub fn add_relation_with_table(
        &mut self,
        rel: Relation,
        table: Table,
    ) -> Result<RelId, RelationalError> {
        if table.arity() != rel.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: rel.name.clone(),
                expected: rel.arity(),
                got: table.arity(),
            });
        }
        let id = self.schema.add_relation(rel)?;
        self.tables.push(Arc::new(table));
        self.gens.push(fresh_gen());
        Ok(id)
    }

    /// The extension of `rel`.
    pub fn table(&self, rel: RelId) -> &Table {
        &self.tables[rel.index()]
    }

    /// The extension of `rel` as a shared handle — a snapshot reader
    /// can hold this across later mutations of the database (the
    /// mutated clone points at a fresh `Arc`, this one stays alive).
    pub fn table_arc(&self, rel: RelId) -> Arc<Table> {
        Arc::clone(&self.tables[rel.index()])
    }

    /// Mutable extension access. Conservatively counts as a mutation
    /// for cache-invalidation purposes (see [`Self::generation`]).
    pub fn table_mut(&mut self, rel: RelId) -> &mut Table {
        self.gens[rel.index()] = fresh_gen();
        Arc::make_mut(&mut self.tables[rel.index()])
    }

    /// The generation tag of `rel`'s extension: assigned at creation
    /// and reassigned by [`Self::insert`], [`Self::replace_table`],
    /// [`Self::append_rows`], [`Self::delete_rows`], and
    /// [`Self::table_mut`]. Tags come from a process-global allocator,
    /// so equal tags mean *the same table version* even across
    /// database clones; cached statistics tagged with a different
    /// generation are stale.
    pub fn generation(&self, rel: RelId) -> u64 {
        self.gens[rel.index()]
    }

    /// Replaces the extension of `rel` (Restruct uses this when dropping
    /// attributes from a relation).
    pub fn replace_table(&mut self, rel: RelId, table: Table) -> Result<(), RelationalError> {
        if table.arity() != self.schema.relation(rel).arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.schema.relation(rel).name.clone(),
                expected: self.schema.relation(rel).arity(),
                got: table.arity(),
            });
        }
        self.tables[rel.index()] = Arc::new(table);
        self.gens[rel.index()] = fresh_gen();
        Ok(())
    }

    /// Marks `rel` as a *streamed extension*: `rows` rows exist, but
    /// the in-memory columns stay empty — the data lives in the paged
    /// store (see `crate::spill`). Bumps the generation like any
    /// other extension change. Panics if the table already has rows
    /// (streaming ingest only targets freshly declared relations).
    pub fn set_streamed_extension(&mut self, rel: RelId, rows: usize) {
        Arc::make_mut(&mut self.tables[rel.index()]).set_streamed_rows(rows);
        self.gens[rel.index()] = fresh_gen();
    }

    /// Installs the full contents of one empty column of a streamed
    /// extension (decoded from the paged store). Deliberately does
    /// **not** bump the generation: the hydrated values are by
    /// construction the ones the paged columns encode, so cached
    /// derived structures stay valid.
    pub fn hydrate_column(&mut self, rel: RelId, attr: AttrId, values: Vec<Value>) {
        Arc::make_mut(&mut self.tables[rel.index()]).hydrate_column(attr, values);
    }

    /// Inserts a tuple with domain validation.
    pub fn insert(&mut self, rel: RelId, row: Vec<Value>) -> Result<(), RelationalError> {
        self.validate_row(rel, &row)?;
        self.gens[rel.index()] = fresh_gen();
        Arc::make_mut(&mut self.tables[rel.index()]).push_row(row)
    }

    fn validate_row(&self, rel: RelId, row: &[Value]) -> Result<(), RelationalError> {
        let relation = self.schema.relation(rel);
        if row.len() != relation.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: relation.name.clone(),
                expected: relation.arity(),
                got: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            let attr = &relation.attributes()[i];
            if !v.fits(attr.domain) {
                return Err(RelationalError::DomainViolation {
                    relation: relation.name.clone(),
                    attribute: attr.name.clone(),
                    value: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Appends a batch of tuples under **one** generation step: every
    /// row is domain-validated up front (all-or-nothing), then the
    /// table moves from its current version directly to one tagged
    /// with a single fresh generation. The delta-maintenance layer
    /// ([`crate::delta`]) relies on exactly one version boundary per
    /// batch. Streamed extensions cannot be appended to.
    pub fn append_rows(
        &mut self,
        rel: RelId,
        rows: Vec<Vec<Value>>,
    ) -> Result<(), RelationalError> {
        if !self.table(rel).is_materialized() {
            return Err(RelationalError::StreamedExtension {
                relation: self.schema.relation(rel).name.clone(),
            });
        }
        for row in &rows {
            self.validate_row(rel, row)?;
        }
        self.gens[rel.index()] = fresh_gen();
        let table = Arc::make_mut(&mut self.tables[rel.index()]);
        for row in rows {
            // Arity was validated above; push_row can no longer fail.
            table.push_row(row)?;
        }
        Ok(())
    }

    /// Deletes the rows at `rows` (indices must be strictly ascending
    /// and in bounds) under one generation step; surviving rows keep
    /// their relative order. Streamed extensions cannot be deleted
    /// from.
    pub fn delete_rows(&mut self, rel: RelId, rows: &[usize]) -> Result<(), RelationalError> {
        let table = self.table(rel);
        if !table.is_materialized() {
            return Err(RelationalError::StreamedExtension {
                relation: self.schema.relation(rel).name.clone(),
            });
        }
        let len = table.len();
        for (i, &r) in rows.iter().enumerate() {
            let ascending = i == 0 || rows[i - 1] < r;
            if r >= len || !ascending {
                return Err(RelationalError::BadDeleteSet {
                    relation: self.schema.relation(rel).name.clone(),
                    index: r,
                    rows: len,
                });
            }
        }
        if rows.is_empty() {
            return Ok(());
        }
        self.gens[rel.index()] = fresh_gen();
        Arc::make_mut(&mut self.tables[rel.index()]).remove_rows(rows);
        Ok(())
    }

    /// Looks up a relation id by name, erroring when missing.
    pub fn rel(&self, name: &str) -> Result<RelId, RelationalError> {
        self.schema
            .rel_id(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// Validates that every declared constraint (`K`, `N`) holds in the
    /// extension. The paper assumes `E` "is correct with respect to the
    /// constraints defined in the data dictionary" — this checks it.
    pub fn validate_dictionary(&self) -> Result<(), RelationalError> {
        for key in &self.constraints.keys {
            let table = self.table(key.rel);
            // Streamed extensions have no raw columns to scan; their
            // twin check is `crate::spill::validate_spilled`, run by
            // whoever performed the streaming ingest.
            if !table.is_materialized() {
                continue;
            }
            let relation = self.schema.relation(key.rel);
            let attrs: Vec<_> = key.attrs.iter().collect();
            let cols: Vec<&[Value]> = attrs.iter().map(|a| table.column(*a)).collect();
            let mut seen = HashSet::with_capacity(table.len());
            'rows: for i in 0..table.len() {
                // Key attributes are not-null by normalization; a null
                // here is caught by the not-null check below, so skip.
                let mut proj = Vec::with_capacity(cols.len());
                for c in &cols {
                    let v = &c[i];
                    if v.is_null() {
                        continue 'rows;
                    }
                    proj.push(v.clone());
                }
                if !seen.insert(proj) {
                    return Err(RelationalError::KeyViolation {
                        relation: relation.name.clone(),
                        key: relation.render_set(&key.attrs),
                    });
                }
            }
        }
        for &(rel, attr) in &self.constraints.not_null {
            let table = self.table(rel);
            if !table.is_materialized() {
                continue;
            }
            if table.column(attr).iter().any(Value::is_null) {
                return Err(RelationalError::NotNullViolation {
                    relation: self.schema.relation(rel).name.clone(),
                    attribute: self.schema.relation(rel).attr_name(attr).to_string(),
                });
            }
        }
        Ok(())
    }

    /// Checks whether an FD holds in the current extension
    /// (`∀ t, t' : t[Y] = t'[Y] ⇒ t[Z] = t'[Z]`).
    ///
    /// SQL semantics: tuples with a NULL in the LHS never agree with any
    /// tuple, so they cannot violate the dependency.
    pub fn fd_holds(&self, fd: &Fd) -> bool {
        let table = self.table(fd.rel);
        let lhs: Vec<_> = fd.lhs.iter().collect();
        let rhs: Vec<_> = fd.rhs.iter().collect();
        let lhs_cols: Vec<&[Value]> = lhs.iter().map(|a| table.column(*a)).collect();
        let rhs_cols: Vec<&[Value]> = rhs.iter().map(|a| table.column(*a)).collect();
        let mut map: std::collections::HashMap<Vec<Value>, usize> =
            std::collections::HashMap::new();
        'rows: for i in 0..table.len() {
            let mut key = Vec::with_capacity(lhs_cols.len());
            for c in &lhs_cols {
                let v = &c[i];
                if v.is_null() {
                    continue 'rows;
                }
                key.push(v.clone());
            }
            match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let first = *e.get();
                    if rhs_cols.iter().any(|c| c[i] != c[first]) {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
        true
    }

    /// Checks whether an IND holds in the current extension
    /// (`r_lhs[Y] ⊆ r_rhs[Z]`, NULL-containing projections dropped).
    pub fn ind_holds(&self, ind: &Ind) -> bool {
        let right = self.table(ind.rhs.rel).distinct_projection(&ind.rhs.attrs);
        let left_table = self.table(ind.lhs.rel);
        let cols: Vec<&[Value]> = ind
            .lhs
            .attrs
            .iter()
            .map(|a| left_table.column(*a))
            .collect();
        'rows: for i in 0..left_table.len() {
            let mut proj = Vec::with_capacity(cols.len());
            for c in &cols {
                let v = &c[i];
                if v.is_null() {
                    continue 'rows;
                }
                proj.push(v.clone());
            }
            if !right.contains(&proj) {
                return false;
            }
        }
        true
    }

    /// Convenience: resolve `(relation, [attrs])` by names into an
    /// ordered id list.
    pub fn resolve(
        &self,
        relation: &str,
        attrs: &[&str],
    ) -> Result<(RelId, Vec<crate::attr::AttrId>), RelationalError> {
        let rel = self.rel(relation)?;
        let ids = self.schema.relation(rel).attr_ids(attrs)?;
        Ok((rel, ids))
    }

    /// Convenience: resolve to an [`AttrSet`].
    pub fn resolve_set(
        &self,
        relation: &str,
        attrs: &[&str],
    ) -> Result<(RelId, AttrSet), RelationalError> {
        let (rel, ids) = self.resolve(relation, attrs)?;
        Ok((rel, AttrSet::from_iter_ids(ids)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::deps::IndSide;
    use crate::value::Domain;

    fn db() -> Database {
        let mut db = Database::new();
        let person = db
            .add_relation(Relation::of(
                "Person",
                &[("id", Domain::Int), ("name", Domain::Text)],
            ))
            .unwrap();
        let emp = db
            .add_relation(Relation::of(
                "Emp",
                &[("no", Domain::Int), ("salary", Domain::Int)],
            ))
            .unwrap();
        db.insert(person, vec![Value::Int(1), Value::str("ann")])
            .unwrap();
        db.insert(person, vec![Value::Int(2), Value::str("bob")])
            .unwrap();
        db.insert(emp, vec![Value::Int(1), Value::Int(100)])
            .unwrap();
        db
    }

    #[test]
    fn insert_validates_domains() {
        let mut d = db();
        let person = d.rel("Person").unwrap();
        let err = d
            .insert(person, vec![Value::str("x"), Value::str("y")])
            .unwrap_err();
        assert!(matches!(err, RelationalError::DomainViolation { .. }));
        let err = d.insert(person, vec![Value::Int(3)]).unwrap_err();
        assert!(matches!(err, RelationalError::ArityMismatch { .. }));
    }

    #[test]
    fn null_fits_any_domain_on_insert() {
        let mut d = db();
        let person = d.rel("Person").unwrap();
        d.insert(person, vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(d.table(person).len(), 3);
    }

    #[test]
    fn dictionary_validation_detects_key_violation() {
        let mut d = db();
        let person = d.rel("Person").unwrap();
        d.constraints.add_key(person, AttrSet::from_indices([0]));
        d.constraints.normalize();
        d.validate_dictionary().unwrap();
        d.insert(person, vec![Value::Int(1), Value::str("dup")])
            .unwrap();
        assert!(matches!(
            d.validate_dictionary(),
            Err(RelationalError::KeyViolation { .. })
        ));
    }

    #[test]
    fn dictionary_validation_detects_null_violation() {
        let mut d = db();
        let person = d.rel("Person").unwrap();
        d.constraints.add_not_null(person, AttrId(1));
        d.constraints.normalize();
        d.validate_dictionary().unwrap();
        d.insert(person, vec![Value::Int(9), Value::Null]).unwrap();
        assert!(matches!(
            d.validate_dictionary(),
            Err(RelationalError::NotNullViolation { .. })
        ));
    }

    #[test]
    fn fd_holds_on_extension() {
        let mut d = db();
        let person = d.rel("Person").unwrap();
        let fd = Fd::new(
            person,
            AttrSet::from_indices([0]),
            AttrSet::from_indices([1]),
        );
        assert!(d.fd_holds(&fd));
        d.insert(person, vec![Value::Int(1), Value::str("other")])
            .unwrap();
        assert!(!d.fd_holds(&fd));
    }

    #[test]
    fn fd_ignores_null_lhs() {
        let mut d = db();
        let person = d.rel("Person").unwrap();
        d.insert(person, vec![Value::Null, Value::str("x")])
            .unwrap();
        d.insert(person, vec![Value::Null, Value::str("y")])
            .unwrap();
        let fd = Fd::new(
            person,
            AttrSet::from_indices([0]),
            AttrSet::from_indices([1]),
        );
        assert!(d.fd_holds(&fd));
    }

    #[test]
    fn ind_holds_on_extension() {
        let d = db();
        let person = d.rel("Person").unwrap();
        let emp = d.rel("Emp").unwrap();
        // Emp[no] << Person[id] holds (1 ⊆ {1,2}).
        let ind = Ind::unary(emp, AttrId(0), person, AttrId(0));
        assert!(d.ind_holds(&ind));
        // Person[id] << Emp[no] does not (2 ∉ {1}).
        let rev = Ind::unary(person, AttrId(0), emp, AttrId(0));
        assert!(!d.ind_holds(&rev));
    }

    #[test]
    fn ind_skips_null_lhs_rows() {
        let mut d = db();
        let emp = d.rel("Emp").unwrap();
        d.insert(emp, vec![Value::Null, Value::Int(5)]).unwrap();
        let person = d.rel("Person").unwrap();
        let ind = Ind::new(
            IndSide::single(emp, AttrId(0)),
            IndSide::single(person, AttrId(0)),
        )
        .unwrap();
        assert!(d.ind_holds(&ind));
    }

    #[test]
    fn resolve_by_names() {
        let d = db();
        let (rel, ids) = d.resolve("Emp", &["salary", "no"]).unwrap();
        assert_eq!(rel, d.rel("Emp").unwrap());
        assert_eq!(ids, vec![AttrId(1), AttrId(0)]);
        assert!(d.resolve("Ghost", &[]).is_err());
        assert!(d.resolve("Emp", &["ghost"]).is_err());
    }
}
