//! Attributes and attribute sets.
//!
//! The paper writes `X`, `Y`, `Z` for attribute sets and `a`, `b` for
//! single attributes, with `XY` for union and `X - Y` for difference.
//! [`AttrSet`] mirrors that algebra as a compact sorted vector of
//! per-relation attribute indices.

use crate::value::Domain;
use std::fmt;

/// Index of an attribute within its relation (position in the relation
/// header). Stable across the lifetime of a schema: attribute removal
/// during restructuring produces a *new* relation rather than mutating
/// indices in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The raw index as usize, for column lookup.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for AttrId {
    fn from(v: u16) -> Self {
        AttrId(v)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An attribute declaration: a name and a domain.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Declared domain.
    pub domain: Domain,
}

impl Attribute {
    /// Creates an attribute with the given name and domain.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Attribute {
            name: name.into(),
            domain,
        }
    }

    /// Creates a text attribute (the most common legacy column type).
    pub fn text(name: impl Into<String>) -> Self {
        Attribute::new(name, Domain::Text)
    }

    /// Creates an integer attribute.
    pub fn int(name: impl Into<String>) -> Self {
        Attribute::new(name, Domain::Int)
    }
}

/// A set of attributes of one relation: sorted, duplicate-free vector of
/// [`AttrId`]s.
///
/// Sets in dependency algorithms are small (a handful of attributes), so
/// a sorted vector beats hash sets both in speed and determinism of
/// iteration order (important for reproducible reports).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrSet(Vec<AttrId>);

impl AttrSet {
    /// The empty set.
    pub fn empty() -> Self {
        AttrSet(Vec::new())
    }

    /// Singleton set `{a}`.
    pub fn single(a: AttrId) -> Self {
        AttrSet(vec![a])
    }

    /// Builds a set from any iterator of ids (sorts and dedups).
    pub fn from_iter_ids(ids: impl IntoIterator<Item = AttrId>) -> Self {
        let mut v: Vec<AttrId> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        AttrSet(v)
    }

    /// Builds a set from raw u16 indices.
    pub fn from_indices(ids: impl IntoIterator<Item = u16>) -> Self {
        Self::from_iter_ids(ids.into_iter().map(AttrId))
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, a: AttrId) -> bool {
        self.0.binary_search(&a).is_ok()
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.0.iter().copied()
    }

    /// The underlying sorted slice.
    pub fn as_slice(&self) -> &[AttrId] {
        &self.0
    }

    /// Inserts an attribute, keeping the sorted invariant.
    pub fn insert(&mut self, a: AttrId) {
        if let Err(pos) = self.0.binary_search(&a) {
            self.0.insert(pos, a);
        }
    }

    /// Removes an attribute if present; returns whether it was present.
    pub fn remove(&mut self, a: AttrId) -> bool {
        match self.0.binary_search(&a) {
            Ok(pos) => {
                self.0.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Set union `XY`.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        AttrSet(out)
    }

    /// Set difference `X - Y`.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        AttrSet(
            self.0
                .iter()
                .copied()
                .filter(|a| !other.contains(*a))
                .collect(),
        )
    }

    /// Set intersection.
    pub fn intersection(&self, other: &AttrSet) -> AttrSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        AttrSet(out)
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        let mut j = 0;
        for a in &self.0 {
            loop {
                if j >= other.0.len() {
                    return false;
                }
                match other.0[j].cmp(a) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        break;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        true
    }

    /// Is `self ⊂ other` (strict)?
    pub fn is_strict_subset(&self, other: &AttrSet) -> bool {
        self.len() < other.len() && self.is_subset(other)
    }

    /// Do the two sets share no attribute?
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        self.intersection(other).is_empty()
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        AttrSet::from_iter_ids(iter)
    }
}

impl FromIterator<u16> for AttrSet {
    fn from_iter<T: IntoIterator<Item = u16>>(iter: T) -> Self {
        AttrSet::from_indices(iter)
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = AttrId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, AttrId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", a.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u16]) -> AttrSet {
        AttrSet::from_indices(ids.iter().copied())
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let x = s(&[3, 1, 3, 2, 1]);
        assert_eq!(x.as_slice(), &[AttrId(1), AttrId(2), AttrId(3)]);
        assert_eq!(x.len(), 3);
    }

    #[test]
    fn union_difference_intersection() {
        let x = s(&[1, 2, 3]);
        let y = s(&[3, 4]);
        assert_eq!(x.union(&y), s(&[1, 2, 3, 4]));
        assert_eq!(x.difference(&y), s(&[1, 2]));
        assert_eq!(x.intersection(&y), s(&[3]));
        assert_eq!(y.difference(&x), s(&[4]));
    }

    #[test]
    fn subset_relations() {
        let x = s(&[1, 3]);
        let y = s(&[1, 2, 3]);
        assert!(x.is_subset(&y));
        assert!(x.is_strict_subset(&y));
        assert!(!y.is_subset(&x));
        assert!(y.is_subset(&y));
        assert!(!y.is_strict_subset(&y));
        assert!(AttrSet::empty().is_subset(&x));
        assert!(s(&[4]).is_disjoint(&x));
        assert!(!s(&[3]).is_disjoint(&x));
    }

    #[test]
    fn insert_remove_keep_sorted() {
        let mut x = s(&[2, 5]);
        x.insert(AttrId(3));
        x.insert(AttrId(3));
        assert_eq!(x, s(&[2, 3, 5]));
        assert!(x.remove(AttrId(2)));
        assert!(!x.remove(AttrId(2)));
        assert_eq!(x, s(&[3, 5]));
    }

    #[test]
    fn contains_uses_binary_search() {
        let x = s(&[1, 4, 9, 16]);
        assert!(x.contains(AttrId(9)));
        assert!(!x.contains(AttrId(8)));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(s(&[1, 2]).to_string(), "{1,2}");
        assert_eq!(AttrSet::empty().to_string(), "{}");
    }
}
