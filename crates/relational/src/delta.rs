//! Delta maintenance: incremental updates of cached counting
//! structures under row appends and deletes.
//!
//! The paper's method assumes a *static* extension, but ROADMAP open
//! item 3 (a live DBRE service) means the extension changes while
//! sessions hold warm caches. Before this module, any mutation bumped
//! the table generation and every cached structure for that relation
//! was recomputed from scratch on next use. Here a mutation is
//! expressed as a [`Delta`], and the cached structures that admit
//! cheap incremental updates — distinct projections, stripped
//! partitions ([`crate::partitions`]) and LHS groups — are carried
//! from the old table version to the new one directly:
//!
//! * **Append** — new rows join existing equivalence classes via a
//!   representative-key map (`O(classes + appended)`), with a single
//!   scan over old rows only when an appended key might promote an
//!   old stripped singleton into a visible class;
//! * **Delete** — pure index surgery: deleted rows leave their
//!   classes, surviving indices shift down by the number of deleted
//!   rows before them, classes that fall under two members are
//!   stripped. No values are read at all.
//!
//! Every function here is pinned against the recompute-from-scratch
//! reference (the constructors in [`crate::partitions`] /
//! [`crate::table`] / [`crate::backend`]) by the differential tests —
//! maintained output must be **equal**, including class and group
//! order, because byte-identical decision logs across sessions depend
//! on it.
//!
//! NULL conventions follow the structures being maintained: partition
//! maintenance treats NULL as a value equal to itself (the mining
//! convention of [`crate::partitions`]); LHS-group and projection
//! maintenance skip rows with a NULL in the projected attributes (SQL
//! semantics).

use crate::database::Database;
use crate::error::RelationalError;
use crate::partitions::StrippedPartition;
use crate::schema::RelId;
use crate::table::ProjKey;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// One batch mutation of a single relation's extension, crossing
/// exactly one generation boundary (see
/// [`Database::append_rows`] / [`Database::delete_rows`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// Append `rows` tuples at the end of the extension.
    Append {
        /// The mutated relation.
        rel: RelId,
        /// The appended tuples, in order.
        rows: Vec<Vec<Value>>,
    },
    /// Delete the rows at the given indices (strictly ascending).
    Delete {
        /// The mutated relation.
        rel: RelId,
        /// Row indices to delete, strictly ascending.
        rows: Vec<usize>,
    },
}

impl Delta {
    /// The relation this delta mutates.
    pub fn rel(&self) -> RelId {
        match self {
            Delta::Append { rel, .. } | Delta::Delete { rel, .. } => *rel,
        }
    }
}

impl Database {
    /// Applies a delta to this database: one validated batch
    /// mutation, one fresh generation tag. Appends clone the delta's
    /// rows (the delta is also handed to cache maintenance, which
    /// reads it by reference).
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<(), RelationalError> {
        match delta {
            Delta::Append { rel, rows } => self.append_rows(*rel, rows.clone()),
            Delta::Delete { rel, rows } => self.delete_rows(*rel, rows),
        }
    }
}

/// Projects row `i` of `cols` (mining convention: NULL is an ordinary
/// key value).
fn project(cols: &[&[Value]], i: usize) -> ProjKey {
    cols.iter().map(|c| c[i].clone()).collect()
}

/// Projects row `i` of `cols` under SQL semantics: `None` when any
/// projected cell is NULL.
fn project_non_null(cols: &[&[Value]], i: usize) -> Option<ProjKey> {
    let mut key = Vec::with_capacity(cols.len());
    for c in cols {
        let v = &c[i];
        if v.is_null() {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

/// New index of surviving row `r` after deleting `deleted` (strictly
/// ascending), or `None` when `r` itself was deleted.
fn remap(r: usize, deleted: &[usize]) -> Option<usize> {
    match deleted.binary_search(&r) {
        Ok(_) => None,
        // `Err(pos)` is the number of deleted indices below `r`.
        Err(pos) => Some(r - pos),
    }
}

/// Generic class-append under an arbitrary row→key projection:
/// appended rows with a key matching an existing class's
/// representative join that class; the rest either promote an old
/// stripped singleton (found in one batched scan over old rows) or
/// form new classes among themselves. Shared by partition (mining
/// convention) and LHS-group (SQL convention) maintenance — the
/// convention lives entirely in `key_of`.
fn classes_append(
    old_classes: &[Vec<usize>],
    old_rows: usize,
    new_rows: usize,
    key_of: impl Fn(usize) -> Option<ProjKey>,
) -> Vec<Vec<usize>> {
    let mut classes: Vec<Vec<usize>> = old_classes.to_vec();
    let mut by_key: HashMap<ProjKey, usize> = HashMap::with_capacity(classes.len());
    for (ci, class) in classes.iter().enumerate() {
        // Classes are non-empty by the stripping invariant; their
        // representative row always projects to a key (group rows are
        // NULL-free under SQL semantics, and the mining projection is
        // total).
        if let Some(key) = class.first().copied().and_then(&key_of) {
            by_key.insert(key, ci);
        }
    }
    let mut pending: HashMap<ProjKey, Vec<usize>> = HashMap::new();
    for i in old_rows..new_rows {
        let Some(key) = key_of(i) else { continue };
        match by_key.get(&key) {
            Some(&ci) => classes[ci].push(i),
            None => pending.entry(key).or_default().push(i),
        }
    }
    if !pending.is_empty() {
        // A pending key may match an old row that was stripped as a
        // singleton; one scan over old rows finds every promotion.
        // (At most one old row per pending key — two old rows with
        // the same key would already be a class.)
        let mut in_class = vec![false; old_rows];
        for class in old_classes {
            for &r in class {
                in_class[r] = true;
            }
        }
        for (i, &claimed) in in_class.iter().enumerate() {
            if claimed {
                continue;
            }
            let Some(key) = key_of(i) else { continue };
            if let Some(mut rows) = pending.remove(&key) {
                // `i` precedes every appended index.
                rows.insert(0, i);
                classes.push(rows);
            }
        }
        for (_, rows) in pending {
            if rows.len() >= 2 {
                classes.push(rows);
            }
        }
    }
    classes.sort();
    classes
}

/// Generic class-delete: index surgery only (deletes can never merge
/// classes or promote singletons). Classes falling under two members
/// are stripped; class order is re-established by sorting, matching
/// the recompute reference.
fn classes_delete(old_classes: &[Vec<usize>], deleted: &[usize]) -> Vec<Vec<usize>> {
    let mut classes: Vec<Vec<usize>> = Vec::with_capacity(old_classes.len());
    for class in old_classes {
        let next: Vec<usize> = class.iter().filter_map(|&r| remap(r, deleted)).collect();
        if next.len() >= 2 {
            classes.push(next);
        }
    }
    classes.sort();
    classes
}

/// Maintains a stripped partition across an append. `cols` are the
/// **after** columns of the partition's attributes (empty for the
/// empty attribute set), `old_rows`/`new_rows` the row counts on
/// either side of the generation boundary. Mining NULL convention.
pub fn partition_append(
    p: &StrippedPartition,
    cols: &[&[Value]],
    old_rows: usize,
    new_rows: usize,
) -> StrippedPartition {
    debug_assert_eq!(p.rows, old_rows);
    let classes = classes_append(&p.classes, old_rows, new_rows, |i| Some(project(cols, i)));
    StrippedPartition {
        classes,
        rows: new_rows,
    }
}

/// Maintains a stripped partition across a delete (`deleted` strictly
/// ascending). Reads no values — deletes are pure index surgery.
pub fn partition_delete(p: &StrippedPartition, deleted: &[usize]) -> StrippedPartition {
    StrippedPartition {
        classes: classes_delete(&p.classes, deleted),
        rows: p.rows - deleted.len(),
    }
}

/// Maintains LHS groups (SQL semantics: NULL-bearing rows excluded)
/// across an append. `cols` are the **after** columns of the LHS
/// attributes.
pub fn lhs_groups_append(
    groups: &[Vec<usize>],
    cols: &[&[Value]],
    old_rows: usize,
    new_rows: usize,
) -> Vec<Vec<usize>> {
    classes_append(groups, old_rows, new_rows, |i| project_non_null(cols, i))
}

/// Maintains LHS groups across a delete (`deleted` strictly
/// ascending).
pub fn lhs_groups_delete(groups: &[Vec<usize>], deleted: &[usize]) -> Vec<Vec<usize>> {
    classes_delete(groups, deleted)
}

/// Maintains a distinct non-NULL projection set across an append:
/// the appended rows' fully non-NULL projections join the set.
/// (Deletes cannot be maintained on a set — the set has no
/// multiplicities — so delete maintenance evicts instead.)
pub fn projection_append(
    set: &HashSet<ProjKey>,
    cols: &[&[Value]],
    old_rows: usize,
    new_rows: usize,
) -> HashSet<ProjKey> {
    let mut out = set.clone();
    for i in old_rows..new_rows {
        if let Some(key) = project_non_null(cols, i) {
            out.insert(key);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::backend::lhs_groups_reference;
    use crate::schema::Relation;
    use crate::table::Table;
    use crate::value::Domain;

    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    fn table(rows: &[Vec<Value>]) -> Table {
        Table::from_rows(rows.first().map_or(2, Vec::len), rows.to_vec()).unwrap()
    }

    fn cols<'t>(t: &'t Table, attrs: &[AttrId]) -> Vec<&'t [Value]> {
        attrs.iter().map(|a| t.column(*a)).collect()
    }

    fn check_partition(before: &[Vec<Value>], appended: &[Vec<Value>], attrs: &[AttrId]) {
        let old = table(before);
        let mut all = before.to_vec();
        all.extend(appended.iter().cloned());
        let new = table(&all);
        let maintained = partition_append(
            &StrippedPartition::for_attrs(&old, attrs),
            &cols(&new, attrs),
            old.len(),
            new.len(),
        );
        assert_eq!(maintained, StrippedPartition::for_attrs(&new, attrs));
    }

    #[test]
    fn append_joins_existing_classes_and_promotes_singletons() {
        let before = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(1), Value::str("b")],
            vec![Value::Int(2), Value::str("c")], // stripped singleton
        ];
        let appended = vec![
            vec![Value::Int(1), Value::str("d")], // joins {0,1}
            vec![Value::Int(2), Value::str("e")], // promotes row 2
            vec![Value::Int(3), Value::str("f")], // new singleton (stays stripped)
            vec![Value::Int(4), Value::str("g")], // new class among appended...
            vec![Value::Int(4), Value::str("h")], // ...rows only
        ];
        check_partition(&before, &appended, &[a(0)]);
        check_partition(&before, &appended, &[a(0), a(1)]);
        check_partition(&before, &appended, &[]);
    }

    #[test]
    fn append_nulls_follow_the_mining_convention() {
        let before = vec![
            vec![Value::Null, Value::Int(1)],
            vec![Value::Int(7), Value::Int(2)],
        ];
        let appended = vec![
            vec![Value::Null, Value::Int(3)], // NULL = NULL: promotes row 0
            vec![Value::Int(7), Value::Int(4)],
        ];
        check_partition(&before, &appended, &[a(0)]);
    }

    #[test]
    fn append_into_empty_table() {
        let appended = vec![
            vec![Value::Int(5), Value::Int(0)],
            vec![Value::Int(5), Value::Int(1)],
        ];
        check_partition(&[], &appended, &[a(0)]);
    }

    #[test]
    fn delete_is_index_surgery() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(0)],
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(2), Value::Int(3)],
            vec![Value::Int(2), Value::Int(4)],
        ];
        let t = table(&rows);
        let p = StrippedPartition::for_attrs(&t, &[a(0)]);
        for deleted in [vec![0], vec![1, 3], vec![3, 4], vec![0, 1, 2]] {
            let mut survivors = rows.clone();
            for &d in deleted.iter().rev() {
                survivors.remove(d);
            }
            let expect = StrippedPartition::for_attrs(&table(&survivors), &[a(0)]);
            assert_eq!(
                partition_delete(&p, &deleted),
                expect,
                "deleted {deleted:?}"
            );
        }
    }

    #[test]
    fn lhs_groups_skip_null_rows_on_both_sides_of_the_boundary() {
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of("T", &[("x", Domain::Int), ("y", Domain::Int)]))
            .unwrap();
        let before = vec![
            vec![Value::Int(1), Value::Int(0)],
            vec![Value::Null, Value::Int(1)], // excluded under SQL semantics
            vec![Value::Int(2), Value::Int(2)], // non-grouped singleton
        ];
        for row in &before {
            db.insert(rel, row.clone()).unwrap();
        }
        let groups = lhs_groups_reference(&db, rel, &[a(0)]);
        let appended = vec![
            vec![Value::Null, Value::Int(3)],   // must NOT group with row 1
            vec![Value::Int(2), Value::Int(4)], // promotes row 2
            vec![Value::Int(1), Value::Int(5)],
        ];
        db.append_rows(rel, appended).unwrap();
        let maintained = lhs_groups_append(&groups, &cols(db.table(rel), &[a(0)]), 3, 6);
        assert_eq!(maintained, lhs_groups_reference(&db, rel, &[a(0)]));

        let deleted = vec![0, 4];
        let expect_groups = {
            let mut d2 = db.clone();
            d2.delete_rows(rel, &deleted).unwrap();
            lhs_groups_reference(&d2, rel, &[a(0)])
        };
        assert_eq!(lhs_groups_delete(&maintained, &deleted), expect_groups);
    }

    #[test]
    fn projection_append_matches_distinct_projection() {
        let before = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Null, Value::str("b")],
        ];
        let appended = [
            vec![Value::Int(1), Value::str("a")], // duplicate
            vec![Value::Null, Value::str("c")],   // skipped (NULL in x)
            vec![Value::Int(9), Value::str("d")],
        ];
        let old = table(&before);
        let mut all = before.clone();
        all.extend(appended.iter().cloned());
        let new = table(&all);
        for attrs in [vec![a(0)], vec![a(0), a(1)]] {
            let maintained = projection_append(
                &old.distinct_projection(&attrs),
                &cols(&new, &attrs),
                old.len(),
                new.len(),
            );
            assert_eq!(maintained, new.distinct_projection(&attrs));
        }
    }

    #[test]
    fn apply_delta_validates_and_tags_once() {
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of("T", &[("x", Domain::Int)]))
            .unwrap();
        db.insert(rel, vec![Value::Int(1)]).unwrap();
        let g0 = db.generation(rel);
        db.apply_delta(&Delta::Append {
            rel,
            rows: vec![vec![Value::Int(2)], vec![Value::Int(3)]],
        })
        .unwrap();
        assert_eq!(db.table(rel).len(), 3);
        assert_ne!(db.generation(rel), g0);

        // Bad batch: nothing applied, generation untouched.
        let g1 = db.generation(rel);
        let err = db.apply_delta(&Delta::Append {
            rel,
            rows: vec![vec![Value::Int(4)], vec![Value::str("bad")]],
        });
        assert!(matches!(err, Err(RelationalError::DomainViolation { .. })));
        assert_eq!(db.table(rel).len(), 3);
        assert_eq!(db.generation(rel), g1);

        let err = db.apply_delta(&Delta::Delete {
            rel,
            rows: vec![2, 1],
        });
        assert!(matches!(err, Err(RelationalError::BadDeleteSet { .. })));
        db.apply_delta(&Delta::Delete {
            rel,
            rows: vec![0, 2],
        })
        .unwrap();
        assert_eq!(db.table(rel).len(), 1);
        assert_eq!(db.table(rel).cell(0, a(0)), &Value::Int(2));
    }
}
