//! Column sketches: HyperLogLog distinct-count estimates plus a
//! blocked Bloom filter per column, built in one streaming pass and
//! used as a *provably sound* prefilter in front of the exact counting
//! kernels.
//!
//! The discovery loops of the paper are quadratic in candidate pairs
//! (IND-Discovery probes every element of `Q`; SPIDER seeds `n²`
//! unary candidates; key discovery tests every attribute), and every
//! candidate pays for an exact kernel probe. Most candidates in a
//! denormalized legacy schema are *hopeless* — disjoint domains,
//! cardinalities that rule out containment — and a cheap per-column
//! summary can prove that without touching the exact kernels.
//!
//! The contract that keeps pruned output byte-identical to exact-only
//! output: **a sketch may only suppress exact work whose result it can
//! prove.** Two kinds of evidence qualify:
//!
//! * a Bloom filter has no false negatives, so a *definite miss*
//!   (`contains == false`) proves the probed value is absent. If every
//!   distinct value of one column misses the other column's filter,
//!   the intersection is *proven empty* ([`ColumnSketch::proves_disjoint`]);
//!   if any value of `A` misses `B`'s filter, `A ⊆ B` is *refuted*
//!   ([`ColumnSketch::refutes_containment`]).
//! * the per-column distinct counts are **exact**, not estimated: the
//!   dictionary already knows its cardinality, and the sketch keeps one
//!   64-bit hash per distinct value (`hashes`). Cardinality ordering
//!   (`‖A‖ > ‖B‖ ⇒ A ⊄ B`) is therefore a proof, not a guess.
//!
//! The HyperLogLog estimate is *never* allowed to veto exact work: it
//! drives only ranking (asking the oracle about high-confidence IND
//! presumptions first) and observability (the estimated-vs-exact
//! error reported in the pipeline stats).
//!
//! Hash soundness: sketches hash whole [`Value`]s with the crate's
//! deterministic [`FxBuildHasher`] (finalized through a strong 64-bit
//! mixer, [`mix64`], because HLL and the Bloom filter consume raw bit
//! patterns). `Value`'s `Hash` is consistent with its `Eq` — NaN
//! floats go through `OrdF64`'s total order — so `v₁ == v₂` implies
//! equal hashes under exactly the equality the join kernels use.

use crate::fasthash::FxBuildHasher;
use crate::value::Value;
use std::hash::BuildHasher;

/// Is the sketch prefilter enabled for this process / pipeline run?
///
/// Pruned and unpruned runs produce byte-identical discovery output
/// (the no-false-negative contract above), so the default is on; `off`
/// exists for differential testing and for measuring the exact-only
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SketchMode {
    /// Build sketches and prune provably-hopeless candidates (default).
    #[default]
    On,
    /// Exact-only: never consult sketches.
    Off,
}

impl SketchMode {
    /// Reads `DBRE_SKETCH` (`off` / `0` / `false` / `no` disable;
    /// anything else — including unset — enables).
    pub fn from_env() -> Self {
        match std::env::var("DBRE_SKETCH") {
            Ok(v) => SketchMode::parse(&v).unwrap_or(SketchMode::On),
            Err(_) => SketchMode::On,
        }
    }

    /// Parses a mode name (`on`/`off` and common synonyms).
    pub fn parse(s: &str) -> Option<SketchMode> {
        match s.to_ascii_lowercase().as_str() {
            "on" | "1" | "true" | "yes" => Some(SketchMode::On),
            "off" | "0" | "false" | "no" => Some(SketchMode::Off),
            _ => None,
        }
    }

    /// Is the prefilter enabled?
    #[inline]
    pub fn is_on(self) -> bool {
        self == SketchMode::On
    }

    /// `"on"` / `"off"`.
    pub fn name(self) -> &'static str {
        match self {
            SketchMode::On => "on",
            SketchMode::Off => "off",
        }
    }
}

/// First index `>= from` with `b[idx] >= h`, by exponential search
/// (gallop) from `from` followed by a binary search of the bracketed
/// range. Hashes are uniform, so the next probe usually lands a long
/// way ahead — galloping costs O(log gap) where a linear merge walk
/// would pay the whole gap.
fn lower_bound_from(b: &[u64], from: usize, h: u64) -> usize {
    let mut step = 1;
    let mut lo = from;
    let mut idx = from;
    while idx < b.len() && b[idx] < h {
        lo = idx + 1;
        idx += step;
        step *= 2;
    }
    let hi = idx.min(b.len());
    lo + b[lo..hi].partition_point(|&x| x < h)
}

/// Do two sorted slices share an element? Walks the smaller slice and
/// gallops through the larger, short-circuiting on the first common
/// value.
fn sorted_intersects(a: &[u64], b: &[u64]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut j = 0;
    for &h in small {
        j = lower_bound_from(large, j, h);
        if j >= large.len() {
            return false;
        }
        if large[j] == h {
            return true;
        }
    }
    false
}

/// Is every element of sorted `a` present in sorted `b`? Gallops
/// through `b`, short-circuiting on the first element of `a` that `b`
/// lacks.
fn sorted_subset(a: &[u64], b: &[u64]) -> bool {
    let mut j = 0;
    for &h in a {
        j = lower_bound_from(b, j, h);
        if j >= b.len() || b[j] != h {
            return false;
        }
        j += 1;
    }
    true
}

/// SplitMix64 finalizer: full-avalanche 64-bit mixing. The Fx hash is
/// fast but weak in its low bits; HLL register selection and Bloom bit
/// derivation need every bit to be unbiased.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The sketch hash of a value: deterministic (unkeyed FxHasher), equal
/// for equal `Value`s, mixed for bit quality. NULL never reaches the
/// sketches (dictionaries track NULLs separately), but hashing it is
/// well-defined anyway.
#[inline]
pub fn value_hash(v: &Value) -> u64 {
    mix64(FxBuildHasher::default().hash_one(v))
}

/// HLL precision: `m = 2^12 = 4096` registers, standard error
/// `1.04/√m ≈ 1.6%`.
const HLL_P: u32 = 12;
const HLL_M: usize = 1 << HLL_P;

/// A HyperLogLog distinct-count estimator (p = 12).
///
/// Estimation only — exact cardinalities come from the dictionary.
/// The estimator exists for overlap ranking ([`ColumnSketch::estimated_overlap`]
/// needs a mergeable union estimate; exact distinct sets of two
/// *different* columns cannot be intersected in O(1)) and for the
/// estimated-vs-exact error metric the pipeline reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Hll {
    registers: Box<[u8]>,
}

impl Default for Hll {
    fn default() -> Self {
        Hll::new()
    }
}

impl Hll {
    /// An empty estimator.
    pub fn new() -> Self {
        Hll {
            registers: vec![0u8; HLL_M].into_boxed_slice(),
        }
    }

    /// Observes one (pre-mixed) hash.
    #[inline]
    pub fn insert(&mut self, h: u64) {
        let idx = (h >> (64 - HLL_P)) as usize;
        let rest = h << HLL_P;
        // Rank of the leftmost 1-bit in the remaining 52 bits (1-based,
        // capped when they are all zero).
        let rho = (rest.leading_zeros().min(64 - HLL_P) + 1) as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Register-wise max merge: the estimator of the union of the two
    /// observed multisets.
    pub fn merged(&self, other: &Hll) -> Hll {
        let registers = self
            .registers
            .iter()
            .zip(other.registers.iter())
            .map(|(&a, &b)| a.max(b))
            .collect::<Vec<u8>>()
            .into_boxed_slice();
        Hll { registers }
    }

    /// The cardinality estimate (raw HLL with the small-range
    /// linear-counting correction; the 64-bit-hash large-range
    /// correction is unnecessary).
    pub fn estimate(&self) -> f64 {
        let m = HLL_M as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in self.registers.iter() {
            sum += 1.0 / (1u64 << r) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

/// 512-bit (8-word) Bloom blocks: one cache line per probe.
const BLOOM_BLOCK_BITS: u32 = 512;
/// Bits budgeted per distinct key (~12 → per-probe fpp well under 1%).
const BLOOM_BITS_PER_KEY: usize = 12;
/// Probes per key, derived from one 64-bit hash by double hashing.
const BLOOM_PROBES: u32 = 8;

/// A blocked Bloom filter over value hashes.
///
/// All `k = 8` probe bits of a key land in a single 512-bit block
/// chosen from the hash's upper bits, so a membership test touches one
/// cache line. False positives are possible (they only cost a wasted
/// exact probe); false negatives are impossible — the property every
/// pruning proof rests on.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedBloom {
    blocks: Vec<[u64; 8]>,
    mask: usize,
}

impl BlockedBloom {
    /// A filter sized for `n` distinct keys (power-of-two block count).
    pub fn with_capacity(n: usize) -> Self {
        let want = (n * BLOOM_BITS_PER_KEY).div_ceil(BLOOM_BLOCK_BITS as usize);
        let blocks = want.next_power_of_two().max(1);
        BlockedBloom {
            blocks: vec![[0u64; 8]; blocks],
            mask: blocks - 1,
        }
    }

    #[inline]
    fn block_of(&self, h: u64) -> usize {
        ((h >> 32) as usize) & self.mask
    }

    /// Start/stride of the double-hashing bit progression. Both come
    /// from the *low* word — the block index comes from the high word,
    /// and reusing high bits for the stride would hand every key in a
    /// block a near-identical probe pattern (catastrophic for the
    /// false-positive rate).
    #[inline]
    fn probe_seed(h: u64) -> (u32, u32) {
        let h1 = h as u32;
        let h2 = (h1 >> 16) | 1; // odd step → full period mod 512
        (h1, h2)
    }

    /// Inserts one (pre-mixed) hash.
    #[inline]
    pub fn insert(&mut self, h: u64) {
        let block = &mut self.blocks[((h >> 32) as usize) & self.mask];
        let (mut h1, h2) = BlockedBloom::probe_seed(h);
        for _ in 0..BLOOM_PROBES {
            let bit = h1 % BLOOM_BLOCK_BITS;
            block[(bit / 64) as usize] |= 1u64 << (bit % 64);
            h1 = h1.wrapping_add(h2);
        }
    }

    /// Membership probe. `false` is definitive (the key was never
    /// inserted); `true` may be a false positive.
    #[inline]
    pub fn contains(&self, h: u64) -> bool {
        let block = &self.blocks[self.block_of(h)];
        let (mut h1, h2) = BlockedBloom::probe_seed(h);
        for _ in 0..BLOOM_PROBES {
            let bit = h1 % BLOOM_BLOCK_BITS;
            if block[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
            h1 = h1.wrapping_add(h2);
        }
        true
    }

    /// Filter size in bytes (observability).
    pub fn size_bytes(&self) -> usize {
        self.blocks.len() * 64
    }
}

/// One column's sketch: exact distinct hashes plus the two probabilistic
/// summaries derived from them.
///
/// Built from a dictionary's decode table (one hash per *distinct*
/// non-NULL value — O(cardinality), not O(rows)), or rebuilt from
/// persisted hashes on the spill-cache load path
/// ([`ColumnSketch::from_hashes`]). Both constructions are
/// deterministic functions of the hash sequence, so a round-tripped
/// sketch equals the freshly built one.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSketch {
    rows: usize,
    nulls: usize,
    /// One [`value_hash`] per distinct non-NULL value, **sorted** —
    /// the probes back every Bloom hit with an exact binary search, so
    /// a Bloom false positive costs `O(log n)` instead of unsoundly
    /// (or, for proofs, uselessly) reporting presence.
    hashes: Vec<u64>,
    hll: Hll,
    bloom: BlockedBloom,
}

impl ColumnSketch {
    /// Builds from a dictionary's distinct values. `rows` counts all
    /// rows of the source column including NULLs.
    pub fn build(values: &[Value], nulls: usize, rows: usize) -> ColumnSketch {
        let hashes: Vec<u64> = values.iter().map(value_hash).collect();
        ColumnSketch::from_hashes(rows, nulls, hashes)
    }

    /// Rebuilds from persisted hashes (spill-cache load). Equals
    /// [`ColumnSketch::build`] over the originating values — sorting
    /// here makes the result canonical regardless of input order.
    pub fn from_hashes(rows: usize, nulls: usize, mut hashes: Vec<u64>) -> ColumnSketch {
        hashes.sort_unstable();
        let mut hll = Hll::new();
        let mut bloom = BlockedBloom::with_capacity(hashes.len());
        for &h in &hashes {
            hll.insert(h);
            bloom.insert(h);
        }
        ColumnSketch {
            rows,
            nulls,
            hashes,
            hll,
            bloom,
        }
    }

    /// Exact membership of `h` in the column's distinct-hash set: the
    /// Bloom filter answers definite misses in one cache line, and the
    /// rare (possible) hits are confirmed against the sorted hashes.
    /// This is what keeps the pruning proofs usable at scale — a raw
    /// Bloom "all probes must miss" proof fails on any false positive,
    /// which over thousands of probes is near-certain.
    #[inline]
    fn contains_hash(&self, h: u64) -> bool {
        self.bloom.contains(h) && self.hashes.binary_search(&h).is_ok()
    }

    /// Rows of the source column (including NULLs).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// NULL rows of the source column.
    #[inline]
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// The **exact** distinct non-NULL count (`‖r[a]‖`), identical to
    /// what the counting kernels report for the unary projection.
    #[inline]
    pub fn distinct_exact(&self) -> usize {
        self.hashes.len()
    }

    /// The HLL estimate of the distinct count — observability and
    /// ranking only, never a pruning proof.
    #[inline]
    pub fn distinct_estimate(&self) -> f64 {
        self.hll.estimate()
    }

    /// Relative HLL error against the exact count:
    /// `|est − exact| / max(exact, 1)`.
    pub fn estimate_error(&self) -> f64 {
        let exact = self.distinct_exact() as f64;
        (self.distinct_estimate() - exact).abs() / exact.max(1.0)
    }

    /// The persisted form: one hash per distinct value, sorted.
    #[inline]
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Exact membership of `h` in the distinct-hash set (Bloom fast
    /// path, binary-search confirmation).
    #[inline]
    pub fn may_contain(&self, h: u64) -> bool {
        self.contains_hash(h)
    }

    /// **Proof:** the column is NULL-free and every row distinct —
    /// i.e. the unary partition is a key partition. (Exact counts, not
    /// estimates; trivially true for the empty column, matching
    /// `StrippedPartition::is_key`.)
    #[inline]
    pub fn is_exact_key(&self) -> bool {
        self.nulls == 0 && self.hashes.len() == self.rows
    }

    /// **Proof:** the two columns' value sets are disjoint
    /// (`N_kl = 0`). The sorted hash arrays share no element — equal
    /// values hash equally, so empty hash intersection implies empty
    /// value intersection. The walk gallops the smaller array through
    /// the larger (not per-key Bloom probes: at high cardinality those
    /// are a random access per key) and short-circuits on the first
    /// shared hash.
    pub fn proves_disjoint(&self, other: &ColumnSketch) -> bool {
        !sorted_intersects(&self.hashes, &other.hashes)
    }

    /// **Proof:** `self ⊄ other` — either the exact cardinalities
    /// forbid it (`‖self‖ > ‖other‖`), or some value of `self` hashes
    /// to nothing in `other` (values present in `other` always land in
    /// its hash set, so an absent hash is an absent value). One-sided:
    /// `true` is always a proof; `false` just means "verify exactly".
    ///
    /// Only a bounded prefix of `self`'s hashes is checked. Hash order
    /// is value-blind, so a genuinely non-contained column trips on
    /// one of its first few hashes with overwhelming probability; once
    /// a walk has confirmed [`REFUTE_CAP`](Self::REFUTE_CAP) hashes
    /// the candidate is almost certainly a real containment, and
    /// walking the rest would only duplicate the exact kernel this
    /// candidate is headed for anyway.
    pub fn refutes_containment(&self, other: &ColumnSketch) -> bool {
        if self.hashes.len() > other.hashes.len() {
            return true;
        }
        let prefix = &self.hashes[..self.hashes.len().min(Self::REFUTE_CAP)];
        !sorted_subset(prefix, &other.hashes)
    }

    /// How many of `self`'s hashes [`Self::refutes_containment`]
    /// checks before giving up and deferring to the exact kernel.
    pub const REFUTE_CAP: usize = 64;

    /// Estimated overlap ratio `≈ N_kl / min(N_k, N_l)`, mirroring
    /// `JoinStats::overlap_ratio`: exact per-side counts, HLL-merged
    /// union estimate for the intersection
    /// (`|A∩B| = |A| + |B| − |A∪B|`), clamped to `[0, 1]`. Ranking
    /// signal only.
    pub fn estimated_overlap(&self, other: &ColumnSketch) -> f64 {
        let min = self.distinct_exact().min(other.distinct_exact()) as f64;
        if min <= 0.0 {
            return 0.0;
        }
        let union = self.hll.merged(&other.hll).estimate();
        let inter = (self.distinct_exact() + other.distinct_exact()) as f64 - union;
        (inter / min).clamp(0.0, 1.0)
    }
}

/// Prefilter observability: how many candidates the sketches saw, how
/// many they pruned with a proof, how many went on to exact
/// verification — plus the accumulated HLL-vs-exact distinct error
/// over the columns consulted. Summed across discovery stages into the
/// pipeline stats and the bench report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SketchPruneStats {
    /// Candidates the prefilter examined.
    pub candidates: u64,
    /// Candidates eliminated by a sketch proof (no exact kernel ran).
    pub pruned: u64,
    /// Candidates that survived and were exactly verified.
    pub verified: u64,
    /// Sum of per-column relative HLL error (`estimate_error`).
    pub est_error_sum: f64,
    /// Columns contributing to `est_error_sum`.
    pub est_error_cols: u64,
}

impl SketchPruneStats {
    /// Field-wise accumulation.
    pub fn merge(&mut self, other: &SketchPruneStats) {
        self.candidates += other.candidates;
        self.pruned += other.pruned;
        self.verified += other.verified;
        self.est_error_sum += other.est_error_sum;
        self.est_error_cols += other.est_error_cols;
    }

    /// Records one consulted column's estimate error.
    pub fn observe_column(&mut self, sketch: &ColumnSketch) {
        self.est_error_sum += sketch.estimate_error();
        self.est_error_cols += 1;
    }

    /// Mean relative HLL error over the consulted columns.
    pub fn mean_distinct_error(&self) -> f64 {
        if self.est_error_cols == 0 {
            0.0
        } else {
            self.est_error_sum / self.est_error_cols as f64
        }
    }

    /// Did the prefilter run at all?
    pub fn active(&self) -> bool {
        self.candidates > 0 || self.est_error_cols > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(range: std::ops::Range<i64>) -> Vec<Value> {
        range.map(Value::Int).collect()
    }

    #[test]
    fn value_hash_is_deterministic_and_eq_consistent() {
        use crate::value::OrdF64;
        assert_eq!(value_hash(&Value::Int(42)), value_hash(&Value::Int(42)));
        assert_ne!(value_hash(&Value::Int(42)), value_hash(&Value::Int(43)));
        // Same-payload NaNs are equal Values, so they must share a hash.
        let nan1 = Value::Float(OrdF64(f64::NAN));
        let nan2 = Value::Float(OrdF64(f64::NAN));
        assert_eq!(nan1, nan2);
        assert_eq!(value_hash(&nan1), value_hash(&nan2));
    }

    #[test]
    fn hll_estimates_within_tolerance() {
        for &n in &[100usize, 1_000, 20_000] {
            let mut hll = Hll::new();
            for i in 0..n {
                hll.insert(value_hash(&Value::Int(i as i64)));
            }
            let est = hll.estimate();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.08, "n={n} est={est} err={err}");
        }
    }

    #[test]
    fn hll_merge_estimates_union() {
        let mut a = Hll::new();
        let mut b = Hll::new();
        for i in 0..5_000i64 {
            a.insert(value_hash(&Value::Int(i)));
            b.insert(value_hash(&Value::Int(i + 2_500))); // 50% overlap
        }
        let union = a.merged(&b).estimate();
        let err = (union - 7_500.0).abs() / 7_500.0;
        assert!(err < 0.08, "union={union} err={err}");
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let keys: Vec<u64> = (0..10_000i64).map(|i| value_hash(&Value::Int(i))).collect();
        let mut bloom = BlockedBloom::with_capacity(keys.len());
        for &k in &keys {
            bloom.insert(k);
        }
        for &k in &keys {
            assert!(bloom.contains(k), "inserted key reported absent");
        }
        // And the false-positive rate on absent keys is small.
        let fps = (10_000..30_000i64)
            .filter(|&i| bloom.contains(value_hash(&Value::Int(i))))
            .count();
        assert!(fps < 600, "false-positive rate too high: {fps}/20000");
    }

    #[test]
    fn disjointness_proof_is_sound_and_useful() {
        let a = ColumnSketch::build(&ints(0..2_000), 0, 2_000);
        let b = ColumnSketch::build(&ints(1_000_000..1_002_000), 0, 2_000);
        let c = ColumnSketch::build(&ints(1_500..3_500), 0, 2_000);
        // Disjoint ranges: provable (overwhelmingly likely with 2k keys;
        // deterministic hashes make this a fixed fact, not a flake).
        assert!(a.proves_disjoint(&b));
        assert!(b.proves_disjoint(&a));
        // Overlapping ranges must never be "proven" disjoint.
        assert!(!a.proves_disjoint(&c));
        assert!(!c.proves_disjoint(&a));
        // Empty column: trivially disjoint from anything.
        let empty = ColumnSketch::build(&[], 0, 0);
        assert!(empty.proves_disjoint(&a));
    }

    #[test]
    fn containment_refutation_is_sound() {
        let small = ColumnSketch::build(&ints(0..100), 0, 100);
        let big = ColumnSketch::build(&ints(0..1_000), 0, 1_000);
        // small ⊆ big truly holds: must never be refuted.
        assert!(!small.refutes_containment(&big));
        // big ⊄ small: refuted by cardinality alone.
        assert!(big.refutes_containment(&small));
        // Shifted set of equal size: refuted by a Bloom miss.
        let shifted = ColumnSketch::build(&ints(50..150), 0, 100);
        assert!(shifted.refutes_containment(&small));
    }

    #[test]
    fn galloped_walks_match_naive_set_semantics() {
        // Deterministic LCG over skewed/balanced size mixes: the
        // galloped lower-bound walks must agree with the obvious
        // HashSet answers on every shape (empty, tiny vs huge, equal,
        // off-by-one boundaries).
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move |bound: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % bound
        };
        for (na, nb) in [
            (0, 0),
            (0, 9),
            (1, 1),
            (3, 1000),
            (1000, 3),
            (64, 64),
            (500, 700),
        ] {
            for round in 0..8u64 {
                let bound = 1 + (round % 4) * 400 + 5;
                let mut a: Vec<u64> = (0..na).map(|_| next(bound)).collect();
                let mut b: Vec<u64> = (0..nb).map(|_| next(bound)).collect();
                a.sort_unstable();
                a.dedup();
                b.sort_unstable();
                b.dedup();
                let sa: std::collections::HashSet<u64> = a.iter().copied().collect();
                let sb: std::collections::HashSet<u64> = b.iter().copied().collect();
                assert_eq!(
                    sorted_intersects(&a, &b),
                    !sa.is_disjoint(&sb),
                    "intersects a={a:?} b={b:?}"
                );
                assert_eq!(
                    sorted_subset(&a, &b),
                    sa.is_subset(&sb),
                    "subset a={a:?} b={b:?}"
                );
            }
        }
    }

    #[test]
    fn overlap_estimate_tracks_truth() {
        let a = ColumnSketch::build(&ints(0..4_000), 0, 4_000);
        let b = ColumnSketch::build(&ints(2_000..6_000), 0, 4_000);
        let est = a.estimated_overlap(&b);
        assert!((est - 0.5).abs() < 0.1, "est={est}");
        let disjoint = ColumnSketch::build(&ints(100_000..104_000), 0, 4_000);
        assert!(a.estimated_overlap(&disjoint) < 0.1);
        assert!(a.estimated_overlap(&a) > 0.9);
    }

    #[test]
    fn from_hashes_round_trips_build() {
        let values = ints(0..500);
        let built = ColumnSketch::build(&values, 3, 503);
        let reloaded = ColumnSketch::from_hashes(503, 3, built.hashes().to_vec());
        assert_eq!(built, reloaded);
        assert_eq!(reloaded.distinct_exact(), 500);
        assert_eq!(reloaded.null_count(), 3);
    }

    #[test]
    fn exact_key_proof_matches_partition_semantics() {
        assert!(ColumnSketch::build(&ints(0..10), 0, 10).is_exact_key());
        // Duplicates → 10 rows, fewer distinct.
        assert!(!ColumnSketch::build(&ints(0..9), 0, 10).is_exact_key());
        // NULLs disqualify.
        assert!(!ColumnSketch::build(&ints(0..10), 1, 11).is_exact_key());
        // Empty column: a key partition (no violating pair).
        assert!(ColumnSketch::build(&[], 0, 0).is_exact_key());
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(SketchMode::parse("on"), Some(SketchMode::On));
        assert_eq!(SketchMode::parse("OFF"), Some(SketchMode::Off));
        assert_eq!(SketchMode::parse("0"), Some(SketchMode::Off));
        assert_eq!(SketchMode::parse("bogus"), None);
        assert!(SketchMode::On.is_on());
        assert_eq!(SketchMode::Off.name(), "off");
    }

    #[test]
    fn prune_stats_merge_and_error() {
        let mut total = SketchPruneStats::default();
        total.merge(&SketchPruneStats {
            candidates: 10,
            pruned: 6,
            verified: 4,
            est_error_sum: 0.02,
            est_error_cols: 2,
        });
        total.merge(&SketchPruneStats {
            candidates: 5,
            pruned: 0,
            verified: 5,
            est_error_sum: 0.04,
            est_error_cols: 1,
        });
        assert_eq!(total.candidates, 15);
        assert_eq!(total.pruned, 6);
        assert_eq!(total.verified, 9);
        assert!((total.mean_distinct_error() - 0.02).abs() < 1e-12);
        assert!(total.active());
        assert!(!SketchPruneStats::default().active());
    }
}
