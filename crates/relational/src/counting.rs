//! Cardinality counting for the IND-Discovery algorithm.
//!
//! For each equi-join `R_k[A_k] ⋈ R_l[A_l]` the algorithm needs three
//! numbers computed against the extension `E`:
//!
//! * `N_k = ‖r_k[A_k]‖` — distinct values on the left,
//! * `N_l = ‖r_l[A_l]‖` — distinct values on the right,
//! * `N_kl = ‖r_k[A_k] ⋈ r_l[A_l]‖` — distinct *join values*, i.e. the
//!   size of the intersection of the two projected value sets.
//!
//! These equal the SQL counts
//! `SELECT COUNT(DISTINCT A) FROM R` and
//! `SELECT COUNT(DISTINCT A_k) FROM R_k, R_l WHERE A_k = A_l`.

use crate::database::Database;
use crate::deps::IndSide;
use crate::schema::Schema;

/// An equi-join `R_k[A_k] ⋈ R_l[A_l]` extracted from an application
/// program — one element of the set `Q`.
///
/// The sides carry ordered attribute lists; composite equi-joins
/// (`a.x = b.u AND a.y = b.v`) yield multi-attribute sides whose
/// positions correspond.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EquiJoin {
    /// Left side `R_k[A_k]`.
    pub left: IndSide,
    /// Right side `R_l[A_l]`.
    pub right: IndSide,
}

impl EquiJoin {
    /// Fallible constructor: errors (instead of panicking) when the
    /// sides differ in arity, so public APIs accepting caller-supplied
    /// `Q` can reject malformed joins gracefully.
    pub fn try_new(left: IndSide, right: IndSide) -> Result<Self, crate::RelationalError> {
        if left.attrs.len() != right.attrs.len() {
            return Err(crate::RelationalError::IndArityMismatch {
                lhs: left.attrs.len(),
                rhs: right.attrs.len(),
            });
        }
        Ok(EquiJoin { left, right })
    }

    /// Validates the join against a concrete database: equal side
    /// arity, in-range relation ids, non-empty attribute lists,
    /// in-range attribute ids. Callers assembling `Q` by hand (struct
    /// literals bypass [`EquiJoin::try_new`]) are checked here before
    /// any counting indexes a table.
    pub fn validate(&self, db: &Database) -> Result<(), crate::RelationalError> {
        use crate::RelationalError;
        if self.left.attrs.len() != self.right.attrs.len() {
            return Err(RelationalError::IndArityMismatch {
                lhs: self.left.attrs.len(),
                rhs: self.right.attrs.len(),
            });
        }
        for side in [&self.left, &self.right] {
            if side.rel.index() >= db.schema.len() {
                return Err(RelationalError::UnknownRelation(format!(
                    "#{}",
                    side.rel.index()
                )));
            }
            let relation = db.schema.relation(side.rel);
            if side.attrs.is_empty() {
                return Err(RelationalError::EmptyAttrList {
                    relation: relation.name.clone(),
                });
            }
            for attr in &side.attrs {
                if attr.index() >= relation.arity() {
                    return Err(RelationalError::UnknownAttribute {
                        relation: relation.name.clone(),
                        attribute: format!("#{}", attr.index()),
                    });
                }
            }
        }
        Ok(())
    }

    /// A canonical form with the lexicographically smaller side first,
    /// used to deduplicate `Q` (an equi-join is symmetric).
    pub fn canonical(&self) -> EquiJoin {
        if (self.left.rel, &self.left.attrs) <= (self.right.rel, &self.right.attrs) {
            self.clone()
        } else {
            EquiJoin {
                left: self.right.clone(),
                right: self.left.clone(),
            }
        }
    }

    /// Renders `A[x] ⋈ B[y]` using schema names.
    pub fn render(&self, schema: &Schema) -> String {
        format!(
            "{} |><| {}",
            self.left.render(schema),
            self.right.render(schema)
        )
    }
}

/// The three cardinalities the IND-Discovery algorithm compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinStats {
    /// `N_k = ‖r_k[A_k]‖`.
    pub n_left: usize,
    /// `N_l = ‖r_l[A_l]‖`.
    pub n_right: usize,
    /// `N_kl = ‖r_k[A_k] ⋈ r_l[A_l]‖` = `|π(r_k) ∩ π(r_l)|`.
    pub n_join: usize,
}

impl JoinStats {
    /// Is the intersection empty? (case (i) of the algorithm)
    pub fn empty_intersection(&self) -> bool {
        self.n_join == 0
    }

    /// Does the left side's value set embed into the right's
    /// (`r_k[A_k] ⊆ r_l[A_l]`)?
    pub fn left_included(&self) -> bool {
        self.n_join == self.n_left && self.n_left > 0
    }

    /// Does the right side's value set embed into the left's?
    pub fn right_included(&self) -> bool {
        self.n_join == self.n_right && self.n_right > 0
    }

    /// A proper non-empty intersection (case NEI): neither side included.
    pub fn is_nei(&self) -> bool {
        self.n_join > 0 && !self.left_included() && !self.right_included()
    }

    /// The Jaccard-style overlap ratio used by automatic oracles to
    /// grade how "faithful" the intersection looks:
    /// `N_kl / min(N_k, N_l)` (0 when a side is empty).
    pub fn overlap_ratio(&self) -> f64 {
        let m = self.n_left.min(self.n_right);
        if m == 0 {
            0.0
        } else {
            self.n_join as f64 / m as f64
        }
    }
}

/// Computes [`JoinStats`] for an equi-join against the extension.
///
/// Cost: one pass over each table plus a hash intersection —
/// `O(|r_k| + |r_l|)`.
pub fn join_stats(db: &Database, join: &EquiJoin) -> JoinStats {
    let left = db
        .table(join.left.rel)
        .distinct_projection(&join.left.attrs);
    let right = db
        .table(join.right.rel)
        .distinct_projection(&join.right.attrs);
    // Iterate the smaller set for the intersection.
    let (small, large) = if left.len() <= right.len() {
        (&left, &right)
    } else {
        (&right, &left)
    };
    let n_join = small.iter().filter(|k| large.contains(*k)).count();
    JoinStats {
        n_left: left.len(),
        n_right: right.len(),
        n_join,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::schema::Relation;
    use crate::value::{Domain, Value};

    fn db_with(left_vals: &[i64], right_vals: &[i64]) -> (Database, EquiJoin) {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("a", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("b", Domain::Int)]))
            .unwrap();
        for &v in left_vals {
            db.insert(l, vec![Value::Int(v)]).unwrap();
        }
        for &v in right_vals {
            db.insert(r, vec![Value::Int(v)]).unwrap();
        }
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        (db, join)
    }

    #[test]
    fn stats_inclusion_left() {
        let (db, join) = db_with(&[1, 2, 2], &[1, 2, 3]);
        let s = join_stats(&db, &join);
        assert_eq!(
            s,
            JoinStats {
                n_left: 2,
                n_right: 3,
                n_join: 2
            }
        );
        assert!(s.left_included());
        assert!(!s.right_included());
        assert!(!s.is_nei());
        assert!(!s.empty_intersection());
    }

    #[test]
    fn stats_nei() {
        let (db, join) = db_with(&[1, 2, 4], &[2, 3]);
        let s = join_stats(&db, &join);
        assert_eq!(s.n_join, 1);
        assert!(s.is_nei());
        assert!((s.overlap_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_intersection() {
        let (db, join) = db_with(&[1], &[2]);
        let s = join_stats(&db, &join);
        assert!(s.empty_intersection());
        assert!(!s.left_included());
        assert!(!s.is_nei());
    }

    #[test]
    fn stats_equal_sets_included_both_ways() {
        let (db, join) = db_with(&[1, 2], &[2, 1, 1]);
        let s = join_stats(&db, &join);
        assert!(s.left_included());
        assert!(s.right_included());
    }

    #[test]
    fn empty_tables_not_reported_included() {
        let (db, join) = db_with(&[], &[]);
        let s = join_stats(&db, &join);
        assert_eq!(s.n_join, 0);
        assert!(!s.left_included());
        assert!(!s.right_included());
        assert_eq!(s.overlap_ratio(), 0.0);
    }

    #[test]
    fn nulls_never_join() {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("a", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("b", Domain::Int)]))
            .unwrap();
        db.insert(l, vec![Value::Null]).unwrap();
        db.insert(r, vec![Value::Null]).unwrap();
        db.insert(l, vec![Value::Int(7)]).unwrap();
        db.insert(r, vec![Value::Int(7)]).unwrap();
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        let s = join_stats(&db, &join);
        assert_eq!(
            s,
            JoinStats {
                n_left: 1,
                n_right: 1,
                n_join: 1
            }
        );
    }

    #[test]
    fn canonical_orders_sides() {
        let (_, join) = db_with(&[], &[]);
        let flipped = EquiJoin::try_new(join.right.clone(), join.left.clone()).unwrap();
        assert_eq!(join.canonical(), flipped.canonical());
    }

    #[test]
    fn try_new_rejects_mismatched_arity() {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("a", Domain::Int), ("b", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("c", Domain::Int)]))
            .unwrap();
        let err = EquiJoin::try_new(
            IndSide::new(l, vec![AttrId(0), AttrId(1)]),
            IndSide::single(r, AttrId(0)),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::RelationalError::IndArityMismatch { lhs: 2, rhs: 1 }
        ));
        assert!(
            EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0))).is_ok()
        );
    }
}
