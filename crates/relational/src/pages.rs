//! The paged columnar store: dictionary codes on disk, counting
//! kernels streaming over fixed-size pages.
//!
//! The in-memory backends cap the extension at what fits in RAM; the
//! paper's target — 100M-row legacy databases — does not. This module
//! keeps each encoded column's per-row `u32` codes (NULL = 0, exactly
//! the [`crate::encode::ColumnDict`] code space) in a spill file of
//! fixed [`PAGE_BYTES`] pages behind a small header, while the
//! *dictionary* halves (decode table, encode index, NULL count) stay
//! resident as a codes-free [`ColumnDict::slim`] copy. Every counting
//! kernel the pipeline needs — `count_distinct`, `join_stats`,
//! `lhs_groups`, counting-sort partitions — re-runs the PR 3 encoded
//! kernels page slice by page slice through a shared LRU
//! [`BufferPool`], so the resident working set is bounded by the pool
//! capacity, not the extension size.
//!
//! Cross-column kernels that never touch per-row codes —
//! [`crate::encode::intersect_count`], [`crate::encode::code_translation`],
//! [`crate::encode::decode_set_cols`] — are reused *unchanged* on the
//! slim dictionaries; only the row-scan loops needed paged twins.
//!
//! [`PagedBackend`] packages the store as the fourth
//! `BackendChoice`: spill-on-encode from the same generation-tagged
//! dictionary build the encoded backend performs, invalidation by
//! eviction ([`BufferPool::evict_file`]) when a table mutates, and a
//! reference fallback (counted in
//! [`BackendExecStats::fallback_failures`]) if a spill file ever
//! fails — an I/O error degrades a probe to the slow path, never to a
//! wrong answer or a panic.

use crate::attr::AttrId;
use crate::backend::{lhs_groups_reference, read_recover, write_recover, Tagged};
use crate::backend::{BackendExecStats, CountBackend};
use crate::bufpool::{BufferPool, PageCacheStats, PageKey};
use crate::counting::{join_stats, EquiJoin, JoinStats};
use crate::database::Database;
use crate::deps::Fd;
use crate::encode::{decode_set_cols, intersect_count, ColumnDict, EncodedSet, NULL_CODE};
use crate::fasthash::{FxHashMap, FxHashSet};
use crate::partitions::StrippedPartition;
use crate::schema::RelId;
use crate::sketch::ColumnSketch;
use crate::spill::{SpillCacheStats, SpilledTable};
use crate::table::ProjKey;
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Size of one on-disk code page in bytes (64 KiB).
pub const PAGE_BYTES: usize = 64 * 1024;
/// Codes per page (`PAGE_BYTES / 4`).
pub const PAGE_CODES: usize = PAGE_BYTES / 4;
/// Spill-file magic: format name + version.
const MAGIC: &[u8; 8] = b"DBREPG01";
/// Header bytes: magic, page size (u32), page count (u32), rows
/// (u64), FNV-1a checksum of the valid code stream (u64). All LE.
pub const HEADER_BYTES: usize = 32;

/// Typed failures of the paged store. Everything I/O-shaped carries a
/// rendered message (`std::io::Error` is neither `Clone` nor `Eq`,
/// which the [`crate::error::DbreError`] taxonomy requires).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// Underlying filesystem failure, rendered.
    Io(String),
    /// The file does not start with the spill-file magic.
    BadMagic,
    /// The header parsed but declares an impossible layout (e.g. a
    /// foreign page size).
    BadHeader(String),
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header implies.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The code stream does not hash to the header checksum.
    Checksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes on disk.
        actual: u64,
    },
    /// A page number past the end of the file was requested.
    PageOutOfBounds {
        /// Requested page.
        page: u32,
        /// Pages in the file.
        pages: u32,
    },
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::Io(m) => write!(f, "page file I/O error: {m}"),
            PageError::BadMagic => write!(f, "not a DBRE page file (bad magic)"),
            PageError::BadHeader(m) => write!(f, "bad page file header: {m}"),
            PageError::Truncated { expected, actual } => {
                write!(
                    f,
                    "page file truncated: {actual} bytes, header claims {expected}"
                )
            }
            PageError::Checksum { expected, actual } => {
                write!(
                    f,
                    "page file checksum mismatch: header {expected:#018x}, data {actual:#018x}"
                )
            }
            PageError::PageOutOfBounds { page, pages } => {
                write!(f, "page {page} out of bounds (file has {pages} pages)")
            }
        }
    }
}

impl std::error::Error for PageError {}

fn io_err(e: std::io::Error) -> PageError {
    PageError::Io(e.to_string())
}

/// FNV-1a over a code stream — cheap, dependency-free, good enough to
/// catch truncation-with-padding and bit rot in a spill file.
fn fnv1a64(mut hash: u64, codes: &[u32]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for c in codes {
        for b in c.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}
/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over raw bytes — the source-content half of the spill-cache
/// key ([`crate::spill`]) and the dictionary-file trailer hash.
pub(crate) fn fnv1a64_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Seed for [`fnv1a64_bytes`] streams (the FNV offset basis).
pub(crate) const FNV_BYTES_SEED: u64 = FNV_OFFSET;

/// Process-unique spill-file ids; a rebuilt column gets a fresh id,
/// so the buffer pool can never serve pages of a dead generation.
static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// One column's codes spilled to disk: a header plus fixed-size pages
/// of little-endian `u32` codes, the last page zero-padded. Owned
/// files (created by [`PageFile::spill`]) are deleted on drop; files
/// opened from a path ([`PageFile::open`]) are left in place.
#[derive(Debug)]
pub struct PageFile {
    path: PathBuf,
    id: u64,
    pages: u32,
    rows: u64,
    checksum: u64,
    handle: Mutex<File>,
    owned: bool,
}

impl PageFile {
    /// Writes `codes` to a fresh spill file in the system temp
    /// directory and reopens it for reading.
    pub fn spill(codes: &[u32]) -> Result<PageFile, PageError> {
        let mut w = PageFileWriter::create_temp()?;
        w.append(codes)?;
        w.finish()
    }

    /// Opens an existing spill file, validating magic, header layout
    /// and physical length (a truncated file fails here, not on a
    /// later page read). The file is *not* deleted on drop.
    pub fn open(path: &Path) -> Result<PageFile, PageError> {
        let mut f = File::open(path).map_err(io_err)?;
        let mut header = [0u8; HEADER_BYTES];
        f.read_exact(&mut header).map_err(|_| {
            let actual = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            PageError::Truncated {
                expected: HEADER_BYTES as u64,
                actual,
            }
        })?;
        if &header[0..8] != MAGIC {
            return Err(PageError::BadMagic);
        }
        let page_bytes = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if page_bytes as usize != PAGE_BYTES {
            return Err(PageError::BadHeader(format!(
                "page size {page_bytes}, this build uses {PAGE_BYTES}"
            )));
        }
        let pages = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        let mut rows8 = [0u8; 8];
        rows8.copy_from_slice(&header[16..24]);
        let rows = u64::from_le_bytes(rows8);
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&header[24..32]);
        let checksum = u64::from_le_bytes(sum8);
        if rows.div_ceil(PAGE_CODES as u64) != u64::from(pages) {
            return Err(PageError::BadHeader(format!(
                "{rows} rows do not fit {pages} pages"
            )));
        }
        let expected = HEADER_BYTES as u64 + u64::from(pages) * PAGE_BYTES as u64;
        let actual = f.metadata().map_err(io_err)?.len();
        if actual < expected {
            return Err(PageError::Truncated { expected, actual });
        }
        Ok(PageFile {
            path: path.to_path_buf(),
            id: NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed),
            pages,
            rows,
            checksum,
            handle: Mutex::new(f),
            owned: false,
        })
    }

    /// The process-unique id pages of this file are keyed under in
    /// the buffer pool.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Pages in the file.
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Rows (valid codes) the file holds.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The on-disk location (mostly for tests and diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads one page, trimmed to its valid codes (the tail page's
    /// zero padding never escapes — padding would be indistinguishable
    /// from NULLs).
    pub fn read_page(&self, page: u32) -> Result<Vec<u32>, PageError> {
        if page >= self.pages {
            return Err(PageError::PageOutOfBounds {
                page,
                pages: self.pages,
            });
        }
        let valid =
            (self.rows - u64::from(page) * PAGE_CODES as u64).min(PAGE_CODES as u64) as usize;
        let mut buf = vec![0u8; valid * 4];
        {
            let mut f = match self.handle.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            f.seek(SeekFrom::Start(
                HEADER_BYTES as u64 + u64::from(page) * PAGE_BYTES as u64,
            ))
            .map_err(io_err)?;
            f.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    PageError::Truncated {
                        expected: HEADER_BYTES as u64 + u64::from(self.pages) * PAGE_BYTES as u64,
                        actual: 0,
                    }
                } else {
                    io_err(e)
                }
            })?;
        }
        Ok(buf
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    /// Streams every page and compares the code stream against the
    /// header checksum — the integrity check for files of unknown
    /// provenance (crash recovery, the fuzz corpus).
    pub fn verify_checksum(&self) -> Result<(), PageError> {
        let mut hash = FNV_OFFSET;
        for p in 0..self.pages {
            hash = fnv1a64(hash, &self.read_page(p)?);
        }
        if hash != self.checksum {
            return Err(PageError::Checksum {
                expected: self.checksum,
                actual: hash,
            });
        }
        Ok(())
    }
}

impl Drop for PageFile {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Incremental spill-file writer: codes arrive value by value (or in
/// slices), pages flush as they fill, and the header — whose page
/// count, row count and checksum are unknown until the stream ends —
/// is patched in by [`PageFileWriter::finish`]. The byte layout is
/// exactly [`PageFile::spill`]'s, so a streamed ingest and a
/// materialize-then-spill produce identical files.
///
/// This is the streaming-ingest seam (`import_csv_spilled` in
/// [`crate::csv`]): a CSV parse can encode straight to disk without
/// ever holding a `Table` or a full code vector in memory.
pub struct PageFileWriter {
    path: PathBuf,
    id: u64,
    w: BufWriter<File>,
    /// Codes of the page being filled (< [`PAGE_CODES`] entries).
    buf: Vec<u32>,
    /// Reusable zero-padded serialization buffer for one page.
    page_bytes: Vec<u8>,
    pages: u32,
    rows: u64,
    hash: u64,
    owned: bool,
}

impl PageFileWriter {
    /// A writer over a fresh temp-dir spill file; the finished
    /// [`PageFile`] is owned (deleted on drop), like
    /// [`PageFile::spill`]'s.
    pub fn create_temp() -> Result<PageFileWriter, PageError> {
        let id = NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("dbre-pages-{}-{}.col", std::process::id(), id));
        PageFileWriter::create(path, id, true)
    }

    /// A writer over an explicit path — the spill-cache store path
    /// ([`crate::spill`]). The finished [`PageFile`] is *not* owned:
    /// it persists for future runs. An existing file is truncated,
    /// which is exactly the overwrite-a-stale-entry behaviour the
    /// cache wants.
    pub fn create_at(path: &Path) -> Result<PageFileWriter, PageError> {
        let id = NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed);
        PageFileWriter::create(path.to_path_buf(), id, false)
    }

    fn create(path: PathBuf, id: u64, owned: bool) -> Result<PageFileWriter, PageError> {
        let mut w = BufWriter::new(File::create(&path).map_err(io_err)?);
        // Header placeholder; the real one lands in `finish`.
        w.write_all(&[0u8; HEADER_BYTES]).map_err(io_err)?;
        Ok(PageFileWriter {
            path,
            id,
            w,
            buf: Vec::with_capacity(PAGE_CODES),
            page_bytes: vec![0u8; PAGE_BYTES],
            pages: 0,
            rows: 0,
            hash: FNV_OFFSET,
            owned,
        })
    }

    /// Appends one code, flushing a page when the buffer fills.
    #[inline]
    pub fn push(&mut self, code: u32) -> Result<(), PageError> {
        self.buf.push(code);
        if self.buf.len() == PAGE_CODES {
            self.flush_page()?;
        }
        Ok(())
    }

    /// Appends a slice of codes.
    pub fn append(&mut self, codes: &[u32]) -> Result<(), PageError> {
        for &c in codes {
            self.push(c)?;
        }
        Ok(())
    }

    /// Rows appended so far (including the unflushed partial page).
    pub fn rows(&self) -> u64 {
        self.rows + self.buf.len() as u64
    }

    /// The file being written (for error-path cleanup by callers —
    /// the writer itself never deletes anything).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn flush_page(&mut self) -> Result<(), PageError> {
        self.hash = fnv1a64(self.hash, &self.buf);
        self.rows += self.buf.len() as u64;
        self.page_bytes.iter_mut().for_each(|b| *b = 0);
        for (dst, c) in self.page_bytes.chunks_exact_mut(4).zip(&self.buf) {
            dst.copy_from_slice(&c.to_le_bytes());
        }
        self.w.write_all(&self.page_bytes).map_err(io_err)?;
        self.pages += 1;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the tail page, patches the real header over the
    /// placeholder and reopens the file as a readable [`PageFile`].
    pub fn finish(mut self) -> Result<PageFile, PageError> {
        if !self.buf.is_empty() {
            self.flush_page()?;
        }
        self.w.flush().map_err(io_err)?;
        let PageFileWriter {
            path,
            id,
            w,
            pages,
            rows,
            hash,
            owned,
            ..
        } = self;
        let mut f = w.into_inner().map_err(|e| PageError::Io(e.to_string()))?;
        let mut header = [0u8; HEADER_BYTES];
        header[0..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&(PAGE_BYTES as u32).to_le_bytes());
        header[12..16].copy_from_slice(&pages.to_le_bytes());
        header[16..24].copy_from_slice(&rows.to_le_bytes());
        header[24..32].copy_from_slice(&hash.to_le_bytes());
        f.seek(SeekFrom::Start(0)).map_err(io_err)?;
        f.write_all(&header).map_err(io_err)?;
        drop(f);
        let handle = File::open(&path).map_err(io_err)?;
        Ok(PageFile {
            path,
            id,
            pages,
            rows,
            checksum: hash,
            handle: Mutex::new(handle),
            owned,
        })
    }
}

/// One column of the paged store: the resident slim dictionary plus
/// the spilled code pages.
#[derive(Debug)]
pub struct PagedColumn {
    /// Codes-free dictionary ([`ColumnDict::slim`]): decode/encode
    /// tables and NULL count, no per-row vector.
    dict: Arc<ColumnDict>,
    rows: usize,
    file: PageFile,
}

impl PagedColumn {
    /// Spills a fully built dictionary's codes to disk and keeps only
    /// the slim half resident.
    pub fn from_dict(full: &ColumnDict) -> Result<PagedColumn, PageError> {
        let file = PageFile::spill(full.codes())?;
        Ok(PagedColumn {
            dict: Arc::new(full.slim()),
            rows: full.rows(),
            file,
        })
    }

    /// Wraps an already-written spill file and its slim dictionary —
    /// the spill-cache load and streaming-ingest paths
    /// ([`crate::spill`], `import_csv_spilled`); [`from_dict`]
    /// remains the encode-from-memory path.
    ///
    /// [`from_dict`]: PagedColumn::from_dict
    pub fn new(dict: Arc<ColumnDict>, file: PageFile) -> PagedColumn {
        PagedColumn {
            rows: file.rows() as usize,
            dict,
            file,
        }
    }

    /// The resident slim dictionary.
    pub fn dict(&self) -> &Arc<ColumnDict> {
        &self.dict
    }

    /// Rows the column encodes.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The spill file.
    pub fn file(&self) -> &PageFile {
        &self.file
    }

    /// One page of codes through the pool.
    pub fn page(&self, pool: &BufferPool, page: u32) -> Result<Arc<Vec<u32>>, PageError> {
        pool.get_or_load(
            PageKey {
                file: self.file.id,
                page,
            },
            || self.file.read_page(page),
        )
    }

    /// Rehydrates the full per-row code vector by streaming every
    /// page — the bridge for consumers that need random access
    /// (`column_dict()` for the batch SQL executor).
    pub fn read_all_codes(&self, pool: &BufferPool) -> Result<Vec<u32>, PageError> {
        let mut codes = Vec::with_capacity(self.rows);
        for p in 0..self.file.pages {
            codes.extend_from_slice(&self.page(pool, p)?);
        }
        Ok(codes)
    }
}

/// Worker threads for chunked page scans. Off-feature this is 1 (the
/// chunked kernels collapse to their serial shape); with the
/// `parallel` feature it follows the machine, overridable through
/// `DBRE_PAGED_THREADS` (clamped to 1..=64) so scaling can be
/// measured — and the parallel code paths exercised — regardless of
/// the host's core count.
fn paged_threads() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        if let Ok(v) = std::env::var("DBRE_PAGED_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, 64);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Splits `pages` into at most `threads` contiguous ranges. Chunk
/// boundaries depend only on (pages, threads), so a merge in chunk
/// order is deterministic.
fn page_chunks(pages: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    if pages == 0 {
        return Vec::new();
    }
    let n = threads.clamp(1, pages);
    let per = pages.div_ceil(n);
    (0..pages)
        .step_by(per)
        .map(|s| s..(s + per).min(pages))
        .collect()
}

/// Runs `f` over every chunk, one scoped thread per chunk when the
/// `parallel` feature is on and there is more than one chunk, inline
/// otherwise. Results come back **in chunk order** regardless of
/// completion order — the determinism the merges rely on.
fn run_chunks<R, F>(chunks: &[std::ops::Range<usize>], f: F) -> Vec<Result<R, PageError>>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Result<R, PageError> + Sync,
{
    #[cfg(feature = "parallel")]
    if chunks.len() > 1 {
        let mut out: Vec<Option<Result<R, PageError>>> = Vec::new();
        out.resize_with(chunks.len(), || None);
        std::thread::scope(|scope| {
            for (slot, chunk) in out.iter_mut().zip(chunks) {
                let fr = &f;
                scope.spawn(move || {
                    *slot = Some(fr(chunk.clone()));
                });
            }
        });
        return out
            .into_iter()
            .map(|r| {
                // Invariant: the scope joins every worker, and each
                // worker's only job is to fill its slot.
                #[allow(clippy::expect_used)]
                r.expect("chunk worker filled its slot before scope exit")
            })
            .collect();
    }
    chunks.iter().map(|c| f(c.clone())).collect()
}

/// How many page groups the prefetching reader may run ahead of the
/// consumer.
#[cfg(feature = "parallel")]
const PREFETCH_DEPTH: usize = 2;

/// Streams `range`'s pages over `cols` in lockstep, calling
/// `f(base_row, slices)` once per page in order. Holding the `Arc`s
/// across the callback keeps the data alive even if the pool evicts
/// the entry mid-iteration, so a capacity-1 pool is slow but never
/// wrong.
///
/// Under the `parallel` feature a reader thread fetches pages through
/// the pool ahead of the consumer (bounded by [`PREFETCH_DEPTH`]),
/// overlapping page I/O with kernel compute. Pages are still
/// requested and delivered strictly in order, so results and counter
/// totals are identical to the plain loop.
fn stream_page_range<F>(
    cols: &[&PagedColumn],
    pool: &BufferPool,
    range: std::ops::Range<usize>,
    mut f: F,
) -> Result<(), PageError>
where
    F: FnMut(usize, &[&[u32]]),
{
    #[cfg(feature = "parallel")]
    if range.len() > 1 {
        return std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::sync_channel(PREFETCH_DEPTH);
            let reader = range.clone();
            scope.spawn(move || {
                for p in reader {
                    let group: Result<Vec<Arc<Vec<u32>>>, PageError> =
                        cols.iter().map(|c| c.page(pool, p as u32)).collect();
                    let stop = group.is_err();
                    if tx.send(group).is_err() || stop {
                        return;
                    }
                }
            });
            for (p, group) in range.clone().zip(rx.iter()) {
                let owned = group?;
                let slices: Vec<&[u32]> = owned.iter().map(|a| a.as_slice()).collect();
                f(p * PAGE_CODES, &slices);
            }
            Ok(())
        });
    }
    for p in range {
        let owned: Vec<Arc<Vec<u32>>> = cols
            .iter()
            .map(|c| c.page(pool, p as u32))
            .collect::<Result<_, _>>()?;
        let slices: Vec<&[u32]> = owned.iter().map(|a| a.as_slice()).collect();
        f(p * PAGE_CODES, &slices);
    }
    Ok(())
}

#[inline]
fn pack2(hi: u32, lo: u32) -> u64 {
    (u64::from(hi) << 32) | u64::from(lo)
}

/// Paged twin of [`crate::encode::distinct_codes_cols`]: the distinct
/// non-NULL projected code tuples, streamed page by page — in
/// parallel per-chunk partials unioned afterwards when the `parallel`
/// feature (and more than one thread) is in play. Set contents are
/// identical either way; only insertion order differs, which no
/// consumer observes.
pub fn distinct_codes_paged(
    cols: &[&PagedColumn],
    rows: usize,
    pool: &BufferPool,
) -> Result<EncodedSet, PageError> {
    let chunks = page_chunks(rows.div_ceil(PAGE_CODES), paged_threads());
    match cols {
        [] => {
            let mut s: FxHashSet<Box<[u32]>> = FxHashSet::default();
            if rows > 0 {
                s.insert(Box::from([]));
            }
            Ok(EncodedSet::Wide(s))
        }
        [c] => Ok(EncodedSet::Unary {
            card: c.dict.cardinality() as u32,
        }),
        [ca, cb] => {
            let cap = (ca.dict.cardinality() as u64 * cb.dict.cardinality() as u64).min(rows as u64)
                as usize;
            let parts = run_chunks(&chunks, |r| {
                let mut set: FxHashSet<u64> = FxHashSet::default();
                stream_page_range(cols, pool, r, |_, slices| {
                    for (&x, &y) in slices[0].iter().zip(slices[1]) {
                        if x != NULL_CODE && y != NULL_CODE {
                            set.insert(pack2(x, y));
                        }
                    }
                })?;
                Ok(set)
            });
            let mut set: FxHashSet<u64> =
                FxHashSet::with_capacity_and_hasher(cap, Default::default());
            for part in parts {
                set.extend(part?);
            }
            Ok(EncodedSet::Packed(set))
        }
        _ => {
            let parts = run_chunks(&chunks, |r| {
                let mut set: FxHashSet<Box<[u32]>> = FxHashSet::default();
                let mut scratch: Vec<u32> = vec![0; cols.len()];
                stream_page_range(cols, pool, r, |_, slices| {
                    'rows: for i in 0..slices[0].len() {
                        for (s, c) in scratch.iter_mut().zip(slices) {
                            let code = c[i];
                            if code == NULL_CODE {
                                continue 'rows;
                            }
                            *s = code;
                        }
                        if !set.contains(scratch.as_slice()) {
                            set.insert(scratch.clone().into_boxed_slice());
                        }
                    }
                })?;
                Ok(set)
            });
            let mut set: FxHashSet<Box<[u32]>> = FxHashSet::default();
            for part in parts {
                set.extend(part?);
            }
            Ok(EncodedSet::Wide(set))
        }
    }
}

/// Paged twin of [`crate::encode::count_distinct_cols`], including
/// the dense-bitset pair fast path.
pub fn count_distinct_paged(
    cols: &[&PagedColumn],
    rows: usize,
    pool: &BufferPool,
) -> Result<usize, PageError> {
    match cols {
        [c] => Ok(c.dict.cardinality()),
        [ca, cb] => {
            let domain = ca.dict.cardinality() as u64 * cb.dict.cardinality() as u64;
            const BITSET_MAX: u64 = 1 << 22;
            if domain > 0 && domain <= BITSET_MAX {
                let width = cb.dict.cardinality() as u64;
                let words = (domain as usize).div_ceil(64);
                let chunks = page_chunks(rows.div_ceil(PAGE_CODES), paged_threads());
                let parts = run_chunks(&chunks, |r| {
                    let mut bits = vec![0u64; words];
                    stream_page_range(cols, pool, r, |_, slices| {
                        for (&x, &y) in slices[0].iter().zip(slices[1]) {
                            if x == NULL_CODE || y == NULL_CODE {
                                continue;
                            }
                            let idx = (u64::from(x) - 1) * width + (u64::from(y) - 1);
                            bits[(idx / 64) as usize] |= 1u64 << (idx % 64);
                        }
                    })?;
                    Ok(bits)
                });
                let mut acc = vec![0u64; words];
                for part in parts {
                    for (a, b) in acc.iter_mut().zip(part?) {
                        *a |= b;
                    }
                }
                Ok(acc.iter().map(|w| w.count_ones() as usize).sum())
            } else {
                Ok(distinct_codes_paged(cols, rows, pool)?.len())
            }
        }
        _ => Ok(distinct_codes_paged(cols, rows, pool)?.len()),
    }
}

/// Per-code occurrence counts of one column. The resident dictionary
/// carries them for free since the counts fusion
/// ([`ColumnDict::code_counts`]); any dictionary without them (a
/// foreign length is treated as "unavailable" by convention) costs
/// one chunked counting pass over the pages. Index 0 is the NULL
/// count.
fn code_counts_paged(col: &PagedColumn, pool: &BufferPool) -> Result<Vec<u32>, PageError> {
    let domain = col.dict.cardinality() + 1;
    let dc = col.dict.code_counts();
    if dc.len() == domain {
        return Ok(dc.iter().map(|&n| n as u32).collect());
    }
    let cols = [col];
    let chunks = page_chunks(col.rows.div_ceil(PAGE_CODES), paged_threads());
    let parts = run_chunks(&chunks, |r| {
        let mut counts: Vec<u32> = vec![0; domain];
        stream_page_range(&cols, pool, r, |_, slices| {
            for &c in slices[0] {
                counts[c as usize] += 1;
            }
        })?;
        Ok(counts)
    });
    let mut acc = vec![0u32; domain];
    for part in parts {
        for (a, b) in acc.iter_mut().zip(part?) {
            *a += b;
        }
    }
    Ok(acc)
}

/// Builds the counting-sort slot table: `slots[c]` is the dense group
/// index of code `c`, `u32::MAX` for codes that form no group
/// (occurrence < 2, or NULL when `skip_null`). Returns the slot table
/// and each group's size.
fn group_slots(counts: &[u32], skip_null: bool) -> (Vec<u32>, Vec<usize>) {
    let mut slots: Vec<u32> = vec![u32::MAX; counts.len()];
    let mut sizes: Vec<usize> = Vec::new();
    let start = usize::from(skip_null);
    for (c, &n) in counts.iter().enumerate().skip(start) {
        if n >= 2 {
            slots[c] = sizes.len() as u32;
            sizes.push(n as usize);
        }
    }
    (slots, sizes)
}

/// The chunked counting-sort fill pass shared by [`lhs_groups_paged`]
/// and [`partition1_paged`]: every row whose code has a slot lands in
/// its group, chunk partials concatenated in chunk order so row ids
/// stay ascending — byte-identical to the serial fill.
fn fill_groups_paged(
    col: &PagedColumn,
    rows: usize,
    pool: &BufferPool,
    slots: &[u32],
    sizes: &[usize],
) -> Result<Vec<Vec<usize>>, PageError> {
    let cols = [col];
    let chunks = page_chunks(rows.div_ceil(PAGE_CODES), paged_threads());
    let parts = run_chunks(&chunks, |r| {
        let mut part: Vec<Vec<usize>> = vec![Vec::new(); sizes.len()];
        stream_page_range(&cols, pool, r, |base, slices| {
            for (i, &c) in slices[0].iter().enumerate() {
                let s = slots[c as usize];
                if s != u32::MAX {
                    part[s as usize].push(base + i);
                }
            }
        })?;
        Ok(part)
    });
    let mut groups: Vec<Vec<usize>> = sizes.iter().map(|&n| Vec::with_capacity(n)).collect();
    for part in parts {
        for (g, p) in groups.iter_mut().zip(part?) {
            g.extend(p);
        }
    }
    Ok(groups)
}

/// Paged twin of [`crate::encode::lhs_groups_cols`]: SQL-semantics
/// row groups (size ≥ 2), page base offsets restoring global row ids.
/// Unary group sizes come straight from the dictionary's fused
/// occurrence counts (no counting pass); the fill pass — and the
/// hash-grouped multi-column arms — run as per-chunk partials merged
/// in chunk order, so the result is byte-identical to the serial
/// scan.
pub fn lhs_groups_paged(
    cols: &[&PagedColumn],
    rows: usize,
    pool: &BufferPool,
) -> Result<Vec<Vec<usize>>, PageError> {
    let chunks = page_chunks(rows.div_ceil(PAGE_CODES), paged_threads());
    match cols {
        [] => Ok(if rows >= 2 {
            vec![(0..rows).collect()]
        } else {
            Vec::new()
        }),
        [col] => {
            let counts = code_counts_paged(col, pool)?;
            // slots[NULL_CODE] stays MAX (SQL semantics: NULL rows
            // never group), so the fill pass needs no NULL check.
            let (slots, sizes) = group_slots(&counts, true);
            let mut groups = fill_groups_paged(col, rows, pool, &slots, &sizes)?;
            groups.sort();
            Ok(groups)
        }
        [_, _] => {
            let parts = run_chunks(&chunks, |r| {
                let mut map: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
                stream_page_range(cols, pool, r, |base, slices| {
                    for (i, (&x, &y)) in slices[0].iter().zip(slices[1]).enumerate() {
                        if x != NULL_CODE && y != NULL_CODE {
                            map.entry(pack2(x, y)).or_default().push(base + i);
                        }
                    }
                })?;
                Ok(map)
            });
            let mut map: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
            for part in parts {
                for (k, v) in part? {
                    map.entry(k).or_default().extend(v);
                }
            }
            let mut groups: Vec<Vec<usize>> = map.into_values().filter(|g| g.len() >= 2).collect();
            groups.sort();
            Ok(groups)
        }
        _ => {
            let parts = run_chunks(&chunks, |r| {
                let mut map: FxHashMap<Box<[u32]>, Vec<usize>> = FxHashMap::default();
                let mut scratch: Vec<u32> = vec![0; cols.len()];
                stream_page_range(cols, pool, r, |base, slices| {
                    'rows: for i in 0..slices[0].len() {
                        for (s, c) in scratch.iter_mut().zip(slices) {
                            let code = c[i];
                            if code == NULL_CODE {
                                continue 'rows;
                            }
                            *s = code;
                        }
                        if let Some(g) = map.get_mut(scratch.as_slice()) {
                            g.push(base + i);
                        } else {
                            map.insert(scratch.clone().into_boxed_slice(), vec![base + i]);
                        }
                    }
                })?;
                Ok(map)
            });
            let mut map: FxHashMap<Box<[u32]>, Vec<usize>> = FxHashMap::default();
            for part in parts {
                for (k, v) in part? {
                    map.entry(k).or_default().extend(v);
                }
            }
            let mut groups: Vec<Vec<usize>> = map.into_values().filter(|g| g.len() >= 2).collect();
            groups.sort();
            Ok(groups)
        }
    }
}

/// Paged twin of [`crate::encode::partition1_col`]: the unary
/// stripped partition (mining convention, NULL = NULL). Class sizes
/// come from the dictionary's fused occurrence counts — NULL included
/// as its own class — so only the chunked fill pass touches pages.
pub fn partition1_paged(
    col: &PagedColumn,
    pool: &BufferPool,
) -> Result<StrippedPartition, PageError> {
    let counts = code_counts_paged(col, pool)?;
    let (slots, sizes) = group_slots(&counts, false);
    let mut classes = fill_groups_paged(col, col.rows, pool, &slots, &sizes)?;
    classes.sort();
    Ok(StrippedPartition {
        classes,
        rows: col.rows,
    })
}

/// Paged FD check, SQL semantics (matches the `CountBackend` default:
/// NULL-LHS rows are skipped, the RHS is compared structurally —
/// same-dictionary code equality *is* structural `Value` equality,
/// `NULL = NULL` and `NaN = NaN` included).
///
/// One chunked pass over LHS and RHS pages together, keeping a single
/// RHS **witness tuple** per LHS group instead of materializing row
/// groups — allocation is bounded by the number of duplicated LHS
/// values, never the extension, which is what lets an out-of-core FD
/// probe run in pool-sized memory. Codes are dense `u32`s (a real
/// code can never be `u32::MAX`), so `u32::MAX` marks "group not seen
/// yet".
pub fn fd_holds_paged(
    lhs: &[&PagedColumn],
    rhs: &[&PagedColumn],
    rows: usize,
    pool: &BufferPool,
) -> Result<bool, PageError> {
    if rhs.is_empty() || rows < 2 {
        return Ok(true);
    }
    let arity = rhs.len();
    let chunks = page_chunks(rows.div_ceil(PAGE_CODES), paged_threads());
    match lhs {
        [] => {
            // One group of every row: holds iff each RHS column is
            // constant under structural equality — all NULL, or one
            // value and no NULLs. Pure dictionary metadata, no scan.
            Ok(rhs.iter().all(|c| {
                let nulls = c.dict.null_count();
                nulls == rows || (c.dict.cardinality() == 1 && nulls == 0)
            }))
        }
        [l] => {
            let counts = code_counts_paged(l, pool)?;
            let (slots, sizes) = group_slots(&counts, true);
            if sizes.is_empty() {
                // Every non-NULL LHS value is unique: nothing to agree on.
                return Ok(true);
            }
            let mut scan: Vec<&PagedColumn> = Vec::with_capacity(1 + arity);
            scan.push(l);
            scan.extend(rhs.iter().copied());
            let parts = run_chunks(&chunks, |r| {
                let mut witness: Vec<u32> = vec![u32::MAX; sizes.len() * arity];
                let mut ok = true;
                stream_page_range(&scan, pool, r, |_, slices| {
                    if !ok {
                        return;
                    }
                    for (i, &c) in slices[0].iter().enumerate() {
                        let s = slots[c as usize];
                        if s == u32::MAX {
                            continue;
                        }
                        let base = s as usize * arity;
                        if witness[base] == u32::MAX {
                            for j in 0..arity {
                                witness[base + j] = slices[1 + j][i];
                            }
                        } else {
                            for j in 0..arity {
                                if witness[base + j] != slices[1 + j][i] {
                                    ok = false;
                                    return;
                                }
                            }
                        }
                    }
                })?;
                Ok(ok.then_some(witness))
            });
            let mut acc: Option<Vec<u32>> = None;
            for part in parts {
                let Some(w) = part? else { return Ok(false) };
                match &mut acc {
                    None => acc = Some(w),
                    Some(a) => {
                        for g in 0..sizes.len() {
                            let base = g * arity;
                            if w[base] == u32::MAX {
                                continue;
                            }
                            if a[base] == u32::MAX {
                                a[base..base + arity].copy_from_slice(&w[base..base + arity]);
                            } else if a[base..base + arity] != w[base..base + arity] {
                                return Ok(false);
                            }
                        }
                    }
                }
            }
            Ok(true)
        }
        _ => {
            let k = lhs.len();
            let mut scan: Vec<&PagedColumn> = Vec::with_capacity(k + arity);
            scan.extend(lhs.iter().copied());
            scan.extend(rhs.iter().copied());
            let parts = run_chunks(&chunks, |r| {
                let mut map: FxHashMap<Box<[u32]>, Box<[u32]>> = FxHashMap::default();
                let mut key: Vec<u32> = vec![0; k];
                let mut ok = true;
                stream_page_range(&scan, pool, r, |_, slices| {
                    if !ok {
                        return;
                    }
                    'rows: for i in 0..slices[0].len() {
                        for (s, c) in key.iter_mut().zip(&slices[..k]) {
                            let code = c[i];
                            if code == NULL_CODE {
                                continue 'rows;
                            }
                            *s = code;
                        }
                        if let Some(w) = map.get(key.as_slice()) {
                            for (j, &wj) in w.iter().enumerate() {
                                if wj != slices[k + j][i] {
                                    ok = false;
                                    return;
                                }
                            }
                        } else {
                            let w: Box<[u32]> = (0..arity).map(|j| slices[k + j][i]).collect();
                            map.insert(key.clone().into_boxed_slice(), w);
                        }
                    }
                })?;
                Ok(ok.then_some(map))
            });
            let mut acc: FxHashMap<Box<[u32]>, Box<[u32]>> = FxHashMap::default();
            for part in parts {
                let Some(m) = part? else { return Ok(false) };
                for (key, w) in m {
                    match acc.entry(key) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if *e.get() != w {
                                return Ok(false);
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(w);
                        }
                    }
                }
            }
            Ok(true)
        }
    }
}

/// The out-of-core counting backend: encoded kernels streaming over
/// spilled code pages through a capacity-bounded [`BufferPool`].
///
/// Column encoding happens exactly as in the encoded backend (one
/// interning pass per column per table generation), but the per-row
/// codes are spilled to a page file immediately and only the slim
/// dictionary stays resident. A table mutation (generation bump)
/// replaces the spill file and purges its pages from the pool; a
/// spill or read failure degrades the probe to the `Value`-based
/// reference semantics and increments
/// [`BackendExecStats::fallback_failures`].
pub struct PagedBackend {
    pool: Arc<BufferPool>,
    columns: RwLock<HashMap<(RelId, AttrId), Tagged<PagedColumn>>>,
    /// Rehydrated full dictionaries for the `column_dict()` seam —
    /// built on demand by streaming every page, then cached per
    /// generation like any other derived structure.
    hydrated: RwLock<HashMap<(RelId, AttrId), Tagged<ColumnDict>>>,
    fallbacks: AtomicU64,
    /// Streamed-ingest tables adopted from the persistent spill cache
    /// (encode skipped entirely).
    spill_hits: AtomicU64,
    /// Streamed-ingest tables that had to encode (cold cache, or no
    /// `--spill-dir` configured).
    spill_misses: AtomicU64,
}

impl Default for PagedBackend {
    fn default() -> Self {
        PagedBackend::new()
    }
}

impl PagedBackend {
    /// A paged backend with the default 64 MiB buffer pool.
    pub fn new() -> Self {
        PagedBackend::with_pool(Arc::new(BufferPool::default()))
    }

    /// A paged backend whose pool holds at most `bytes` of page data.
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        PagedBackend::with_pool(Arc::new(BufferPool::with_capacity_bytes(bytes)))
    }

    /// A paged backend over an explicit (possibly shared) pool.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        PagedBackend {
            pool,
            columns: RwLock::new(HashMap::new()),
            hydrated: RwLock::new(HashMap::new()),
            fallbacks: AtomicU64::new(0),
            spill_hits: AtomicU64::new(0),
            spill_misses: AtomicU64::new(0),
        }
    }

    /// The backend's buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The paged encoding of one column, spilled once per table
    /// generation. A stale entry's pages are purged from the pool
    /// before the replacement is adopted (invalidation by eviction).
    pub fn paged_column(
        &self,
        db: &Database,
        rel: RelId,
        attr: AttrId,
    ) -> Result<Arc<PagedColumn>, PageError> {
        let gen = db.generation(rel);
        let key = (rel, attr);
        if let Some(entry) = read_recover(&self.columns).get(&key) {
            if entry.gen == gen {
                return Ok(Arc::clone(&entry.value));
            }
        }
        // A streamed extension's rows exist only in the paged store —
        // there is no in-memory column to (re-)encode from. A miss
        // here means the adopted columns were invalidated (the table
        // mutated); rebuilding from the empty in-memory column would
        // silently encode zero rows.
        if !db.table(rel).is_materialized() {
            return Err(PageError::Io(format!(
                "column {} of relation {} is a streamed extension with no spilled pages",
                attr.0, rel.0
            )));
        }
        let full = ColumnDict::build(db.table(rel).column(attr));
        let value = Arc::new(PagedColumn::from_dict(&full)?);
        drop(full);
        let mut columns = write_recover(&self.columns);
        if let Some(entry) = columns.get(&key) {
            if entry.gen == gen {
                return Ok(Arc::clone(&entry.value));
            }
        }
        if let Some(stale) = columns.insert(
            key,
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        ) {
            self.pool.evict_file(stale.value.file.id);
        }
        Ok(value)
    }

    fn attr_columns(
        &self,
        db: &Database,
        rel: RelId,
        attrs: &[AttrId],
    ) -> Result<Vec<Arc<PagedColumn>>, PageError> {
        attrs
            .iter()
            .map(|a| self.paged_column(db, rel, *a))
            .collect()
    }

    fn note_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Degrades a failed probe to the reference path — unless one of
    /// the involved tables is a streamed extension, where the
    /// reference path would compute over *empty* in-memory columns. A
    /// loud panic (caught and surfaced by the session's per-stage
    /// isolation) beats a silently wrong answer.
    fn note_fallback_or_die(&self, db: &Database, rels: &[RelId], err: &PageError) {
        for &rel in rels {
            assert!(
                db.table(rel).is_materialized(),
                "paged backend failed on a streamed extension with no in-memory fallback: {err}"
            );
        }
        self.note_fallback();
    }

    /// Adopts a streamed-ingest table's columns: the spill files were
    /// written (or loaded from the persistent cache) by
    /// `import_csv_spilled`, so no encode pass runs here. Columns are
    /// installed under the table's *current* generation; the spill
    /// hit/miss counters record whether the cache skipped encode.
    pub fn adopt_spilled(&self, db: &Database, rel: RelId, table: &SpilledTable) {
        let gen = db.generation(rel);
        let mut columns = write_recover(&self.columns);
        for (i, col) in table.columns().iter().enumerate() {
            let key = (rel, AttrId(i as u16));
            if let Some(stale) = columns.insert(
                key,
                Tagged {
                    gen,
                    value: Arc::clone(col),
                },
            ) {
                self.pool.evict_file(stale.value.file.id);
            }
        }
        drop(columns);
        if table.from_cache() {
            self.spill_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.spill_misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl CountBackend for PagedBackend {
    fn name(&self) -> &'static str {
        "paged"
    }

    fn count_distinct(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        let rows = db.table(rel).len();
        let probe = self.attr_columns(db, rel, attrs).and_then(|cols| {
            let refs: Vec<&PagedColumn> = cols.iter().map(Arc::as_ref).collect();
            count_distinct_paged(&refs, rows, &self.pool)
        });
        match probe {
            Ok(n) => n,
            Err(e) => {
                self.note_fallback_or_die(db, &[rel], &e);
                db.table(rel).count_distinct(attrs)
            }
        }
    }

    fn join_stats(&self, db: &Database, join: &EquiJoin) -> JoinStats {
        let probe = (|| -> Result<JoinStats, PageError> {
            let lrows = db.table(join.left.rel).len();
            let rrows = db.table(join.right.rel).len();
            let lcols = self.attr_columns(db, join.left.rel, &join.left.attrs)?;
            let rcols = self.attr_columns(db, join.right.rel, &join.right.attrs)?;
            let lrefs: Vec<&PagedColumn> = lcols.iter().map(Arc::as_ref).collect();
            let rrefs: Vec<&PagedColumn> = rcols.iter().map(Arc::as_ref).collect();
            let lset = distinct_codes_paged(&lrefs, lrows, &self.pool)?;
            let rset = distinct_codes_paged(&rrefs, rrows, &self.pool)?;
            // The intersection kernel reads only dictionary lookups
            // (`code_translation`, `code_of`), never per-row codes, so
            // the slim dictionaries drive it unchanged.
            let ldicts: Vec<&ColumnDict> = lcols.iter().map(|c| c.dict.as_ref()).collect();
            let rdicts: Vec<&ColumnDict> = rcols.iter().map(|c| c.dict.as_ref()).collect();
            let n_join = intersect_count(&ldicts, &lset, &rdicts, &rset);
            Ok(JoinStats {
                n_left: lset.len(),
                n_right: rset.len(),
                n_join,
            })
        })();
        match probe {
            Ok(s) => s,
            Err(e) => {
                self.note_fallback_or_die(db, &[join.left.rel, join.right.rel], &e);
                join_stats(db, join)
            }
        }
    }

    fn lhs_groups(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<Vec<Vec<usize>>> {
        let rows = db.table(rel).len();
        let probe = self.attr_columns(db, rel, attrs).and_then(|cols| {
            let refs: Vec<&PagedColumn> = cols.iter().map(Arc::as_ref).collect();
            lhs_groups_paged(&refs, rows, &self.pool)
        });
        match probe {
            Ok(groups) => Arc::new(groups),
            Err(e) => {
                self.note_fallback_or_die(db, &[rel], &e);
                Arc::new(lhs_groups_reference(db, rel, attrs))
            }
        }
    }

    fn projection(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<HashSet<ProjKey>> {
        let rows = db.table(rel).len();
        let probe = self.attr_columns(db, rel, attrs).and_then(|cols| {
            let refs: Vec<&PagedColumn> = cols.iter().map(Arc::as_ref).collect();
            let set = distinct_codes_paged(&refs, rows, &self.pool)?;
            // Decoding touches only the decode tables of the slim
            // dictionaries.
            let dicts: Vec<&ColumnDict> = cols.iter().map(|c| c.dict.as_ref()).collect();
            Ok(decode_set_cols(&dicts, &set))
        });
        match probe {
            Ok(set) => Arc::new(set),
            Err(e) => {
                self.note_fallback_or_die(db, &[rel], &e);
                Arc::new(db.table(rel).distinct_projection(attrs))
            }
        }
    }

    fn partition1(&self, db: &Database, rel: RelId, attr: AttrId) -> Arc<StrippedPartition> {
        let probe = self
            .paged_column(db, rel, attr)
            .and_then(|col| partition1_paged(&col, &self.pool));
        match probe {
            Ok(p) => Arc::new(p),
            Err(e) => {
                self.note_fallback_or_die(db, &[rel], &e);
                Arc::new(StrippedPartition::for_attribute(db.table(rel), attr))
            }
        }
    }

    fn fd_holds(&self, db: &Database, fd: &Fd) -> bool {
        let rows = db.table(fd.rel).len();
        let lhs: Vec<AttrId> = fd.lhs.iter().collect();
        let rhs: Vec<AttrId> = fd.rhs.iter().collect();
        let probe = (|| -> Result<bool, PageError> {
            let lcols = self.attr_columns(db, fd.rel, &lhs)?;
            let rcols = self.attr_columns(db, fd.rel, &rhs)?;
            let lrefs: Vec<&PagedColumn> = lcols.iter().map(Arc::as_ref).collect();
            let rrefs: Vec<&PagedColumn> = rcols.iter().map(Arc::as_ref).collect();
            fd_holds_paged(&lrefs, &rrefs, rows, &self.pool)
        })();
        match probe {
            Ok(b) => b,
            Err(e) => {
                self.note_fallback_or_die(db, &[fd.rel], &e);
                db.fd_holds(fd)
            }
        }
    }

    fn prewarm(&self, db: &Database, rel: RelId) {
        // Spill every column while the rows are hot; a failed spill is
        // retried (and fallback-counted) by whichever probe needs it.
        let arity = db.table(rel).arity();
        for i in 0..arity {
            let _ = self.paged_column(db, rel, AttrId(i as u16));
        }
    }

    fn column_dict(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<Arc<ColumnDict>> {
        let gen = db.generation(rel);
        let key = (rel, attr);
        if let Some(entry) = read_recover(&self.hydrated).get(&key) {
            if entry.gen == gen {
                return Some(Arc::clone(&entry.value));
            }
        }
        let col = match self.paged_column(db, rel, attr) {
            Ok(c) => c,
            Err(e) => {
                self.note_fallback_or_die(db, &[rel], &e);
                return None;
            }
        };
        let codes = match col.read_all_codes(&self.pool) {
            Ok(c) => c,
            Err(e) => {
                self.note_fallback_or_die(db, &[rel], &e);
                return None;
            }
        };
        let value = Arc::new(col.dict.rehydrate(codes));
        let mut hydrated = write_recover(&self.hydrated);
        if let Some(entry) = hydrated.get(&key) {
            if entry.gen == gen {
                return Some(Arc::clone(&entry.value));
            }
        }
        hydrated.insert(
            key,
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        );
        Some(value)
    }

    fn column_sketch(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<Arc<ColumnSketch>> {
        // The resident slim dictionary carries the whole value set and
        // the fused counts — everything a sketch summarizes — so this
        // never streams a single code page (unlike `column_dict`,
        // which rehydrates the full column). Streamed-ingest columns
        // loaded from a warm spill entry arrive with the sketch
        // preseeded from persisted hashes. A spill failure simply
        // yields no sketch: pruning is disabled, answers unchanged.
        self.paged_column(db, rel, attr)
            .ok()
            .and_then(|col| col.dict.sketch())
    }

    fn exec_stats(&self) -> BackendExecStats {
        BackendExecStats {
            fallback_failures: self.fallbacks.load(Ordering::Relaxed),
            ..BackendExecStats::default()
        }
    }

    fn page_stats(&self) -> PageCacheStats {
        self.pool.stats()
    }

    fn spill_stats(&self) -> SpillCacheStats {
        SpillCacheStats {
            hits: self.spill_hits.load(Ordering::Relaxed),
            misses: self.spill_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{EncodedBackend, ReferenceBackend};
    use crate::deps::IndSide;
    use crate::schema::Relation;
    use crate::value::{Domain, Value};

    fn sample_db() -> (Database, RelId, RelId) {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("a", Domain::Int), ("b", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("c", Domain::Int)]))
            .unwrap();
        for (a, b) in [(1, 10), (1, 10), (2, 20), (3, 20), (4, 30)] {
            db.insert(l, vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        db.insert(l, vec![Value::Null, Value::Int(40)]).unwrap();
        for c in [1, 2, 3, 9] {
            db.insert(r, vec![Value::Int(c)]).unwrap();
        }
        (db, l, r)
    }

    #[test]
    fn page_file_round_trips_codes() {
        let codes: Vec<u32> = (0..PAGE_CODES as u32 * 2 + 17).map(|i| i % 977).collect();
        let f = PageFile::spill(&codes).unwrap();
        assert_eq!(f.pages(), 3);
        assert_eq!(f.rows(), codes.len() as u64);
        let mut back = Vec::new();
        for p in 0..f.pages() {
            back.extend_from_slice(&f.read_page(p).unwrap());
        }
        assert_eq!(back, codes);
        f.verify_checksum().unwrap();
        assert!(matches!(
            f.read_page(3),
            Err(PageError::PageOutOfBounds { page: 3, pages: 3 })
        ));
    }

    #[test]
    fn spill_file_is_deleted_on_drop() {
        let f = PageFile::spill(&[1, 2, 3]).unwrap();
        let path = f.path().to_path_buf();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists());
    }

    #[test]
    fn open_rejects_truncation_magic_and_checksum() {
        let codes: Vec<u32> = (0..PAGE_CODES as u32 + 5).collect();
        let f = PageFile::spill(&codes).unwrap();
        let bytes = std::fs::read(f.path()).unwrap();
        let dir = std::env::temp_dir();
        let stamp = std::process::id();

        // Truncated mid-page.
        let t = dir.join(format!("dbre-test-trunc-{stamp}.col"));
        std::fs::write(&t, &bytes[..bytes.len() - PAGE_BYTES / 2]).unwrap();
        assert!(matches!(
            PageFile::open(&t),
            Err(PageError::Truncated { .. })
        ));

        // Foreign magic.
        let m = dir.join(format!("dbre-test-magic-{stamp}.col"));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        std::fs::write(&m, &bad).unwrap();
        assert!(matches!(PageFile::open(&m), Err(PageError::BadMagic)));

        // Flipped code bytes: header parses, checksum catches it.
        let c = dir.join(format!("dbre-test-sum-{stamp}.col"));
        let mut bad = bytes.clone();
        bad[HEADER_BYTES + 8] ^= 0xff;
        std::fs::write(&c, &bad).unwrap();
        let opened = PageFile::open(&c).unwrap();
        assert!(matches!(
            opened.verify_checksum(),
            Err(PageError::Checksum { .. })
        ));

        for p in [t, m, c] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn paged_backend_matches_reference_and_encoded() {
        let (db, l, r) = sample_db();
        let reference = ReferenceBackend;
        let encoded = EncodedBackend::new();
        // One page worth of pool is enough for correctness.
        let paged = PagedBackend::with_capacity_bytes(PAGE_BYTES);
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        for attrs in [vec![AttrId(0)], vec![AttrId(0), AttrId(1)]] {
            assert_eq!(
                paged.count_distinct(&db, l, &attrs),
                reference.count_distinct(&db, l, &attrs)
            );
            assert_eq!(
                *paged.lhs_groups(&db, l, &attrs),
                *reference.lhs_groups(&db, l, &attrs)
            );
            assert_eq!(
                *paged.projection(&db, l, &attrs),
                *reference.projection(&db, l, &attrs)
            );
        }
        assert_eq!(paged.join_stats(&db, &join), encoded.join_stats(&db, &join));
        assert_eq!(
            *paged.partition1(&db, l, AttrId(1)),
            *reference.partition1(&db, l, AttrId(1))
        );
        assert_eq!(paged.exec_stats().fallback_failures, 0);
        let stats = paged.page_stats();
        assert!(stats.hits + stats.misses > 0, "probes must touch the pool");
    }

    #[test]
    fn mutation_invalidates_and_purges_pages() {
        let (mut db, l, _) = sample_db();
        let paged = PagedBackend::new();
        assert_eq!(paged.count_distinct(&db, l, &[AttrId(0)]), 4);
        let old_file = paged.paged_column(&db, l, AttrId(0)).unwrap().file().id();
        db.insert(l, vec![Value::Int(99), Value::Int(1)]).unwrap();
        assert_eq!(paged.count_distinct(&db, l, &[AttrId(0)]), 5);
        let new_file = paged.paged_column(&db, l, AttrId(0)).unwrap().file().id();
        assert_ne!(old_file, new_file, "mutation must respill the column");
    }

    #[test]
    fn column_dict_rehydrates_full_codes() {
        let (db, l, _) = sample_db();
        let paged = PagedBackend::new();
        let dict = CountBackend::column_dict(&paged, &db, l, AttrId(0)).unwrap();
        let direct = ColumnDict::build(db.table(l).column(AttrId(0)));
        assert_eq!(dict.codes(), direct.codes());
        assert_eq!(dict.cardinality(), direct.cardinality());
        assert_eq!(dict.null_count(), direct.null_count());
    }

    #[test]
    fn multi_page_columns_stream_correctly() {
        // Enough rows for several pages, with NULLs and duplicates.
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of("T", &[("x", Domain::Int), ("y", Domain::Int)]))
            .unwrap();
        let rows = PAGE_CODES * 2 + 123;
        for i in 0..rows {
            let x = if i % 97 == 0 {
                Value::Null
            } else {
                Value::Int((i % 1009) as i64)
            };
            db.insert(rel, vec![x, Value::Int((i % 31) as i64)])
                .unwrap();
        }
        let reference = ReferenceBackend;
        let paged = PagedBackend::with_capacity_bytes(PAGE_BYTES); // 1-page pool: constant churn
        for attrs in [vec![AttrId(0)], vec![AttrId(1)], vec![AttrId(0), AttrId(1)]] {
            assert_eq!(
                paged.count_distinct(&db, rel, &attrs),
                reference.count_distinct(&db, rel, &attrs),
                "{attrs:?}"
            );
        }
        assert_eq!(
            *paged.lhs_groups(&db, rel, &[AttrId(1)]),
            *reference.lhs_groups(&db, rel, &[AttrId(1)])
        );
        assert_eq!(
            *paged.partition1(&db, rel, AttrId(0)),
            *reference.partition1(&db, rel, AttrId(0))
        );
        assert!(paged.page_stats().evictions > 0, "1-page pool must churn");
        assert_eq!(paged.exec_stats().fallback_failures, 0);
    }

    #[test]
    fn writer_streams_byte_identical_to_spill() {
        // The streaming writer must produce the exact on-disk format of
        // the materialize-then-spill path, byte for byte — the spill
        // cache and the differential ingest test both lean on this.
        let codes: Vec<u32> = (0..PAGE_CODES as u32 * 3 + 41)
            .map(|i| i.wrapping_mul(2654435761))
            .collect();
        let whole = PageFile::spill(&codes).unwrap();
        let mut w = PageFileWriter::create_temp().unwrap();
        // Feed through a mix of push() and append() with awkward splits.
        for &c in &codes[..7] {
            w.push(c).unwrap();
        }
        w.append(&codes[7..PAGE_CODES + 3]).unwrap();
        for &c in &codes[PAGE_CODES + 3..] {
            w.push(c).unwrap();
        }
        assert_eq!(w.rows(), codes.len() as u64);
        let streamed = w.finish().unwrap();
        assert_eq!(
            std::fs::read(whole.path()).unwrap(),
            std::fs::read(streamed.path()).unwrap()
        );
        streamed.verify_checksum().unwrap();
        assert_eq!(streamed.rows(), codes.len() as u64);
    }

    #[test]
    fn empty_writer_matches_empty_spill() {
        let whole = PageFile::spill(&[]).unwrap();
        let streamed = PageFileWriter::create_temp().unwrap().finish().unwrap();
        assert_eq!(
            std::fs::read(whole.path()).unwrap(),
            std::fs::read(streamed.path()).unwrap()
        );
        assert_eq!(streamed.pages(), 0);
        assert_eq!(streamed.rows(), 0);
    }

    #[test]
    fn fd_holds_matches_reference() {
        // Multi-page table where some FDs hold and some fail, with
        // NULL-heavy LHS columns (NULL-LHS rows are exempt per the
        // paper's SQL probe semantics).
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of(
                "T",
                &[
                    ("a", Domain::Int),
                    ("b", Domain::Int),
                    ("c", Domain::Int),
                    ("k", Domain::Int),
                ],
            ))
            .unwrap();
        let rows = PAGE_CODES + 517;
        for i in 0..rows as i64 {
            let a = if i % 13 == 0 {
                Value::Null
            } else {
                Value::Int(i % 200)
            };
            // b is a function of a's code (holds), c is noisy (fails).
            let b = Value::Int((i % 200) * 3);
            let c = Value::Int(i % 7);
            db.insert(rel, vec![a, b, c, Value::Int(i)]).unwrap();
        }
        let paged = PagedBackend::with_capacity_bytes(PAGE_BYTES);
        let fd = |lhs: &[u16], rhs: &[u16]| Fd {
            rel,
            lhs: crate::attr::AttrSet::from_indices(lhs.iter().copied()),
            rhs: crate::attr::AttrSet::from_indices(rhs.iter().copied()),
        };
        for (lhs, rhs) in [
            (&[0u16][..], &[1u16][..]), // a → b: holds (NULL-a rows exempt)
            (&[0], &[2]),               // a → c: fails
            (&[1], &[0]),               // b → a: fails (NULL vs non-NULL under same b)
            (&[0, 2], &[1]),            // ac → b: holds
            (&[0, 1], &[2]),            // ab → c: fails
            (&[3], &[0, 1, 2]),         // key → everything: holds
            (&[], &[1]),                // {} → b: fails (b not constant)
            (&[0], &[1, 2]),            // multi-RHS: fails because of c
        ] {
            let fd = fd(lhs, rhs);
            assert_eq!(
                CountBackend::fd_holds(&paged, &db, &fd),
                db.fd_holds(&fd),
                "lhs={lhs:?} rhs={rhs:?}"
            );
        }
        // Constant RHS: {} → const holds without a scan.
        let mut db2 = Database::new();
        let r2 = db2
            .add_relation(Relation::of("C", &[("u", Domain::Int), ("v", Domain::Int)]))
            .unwrap();
        for i in 0..10 {
            db2.insert(r2, vec![Value::Int(i), Value::Int(7)]).unwrap();
        }
        let fd2 = Fd {
            rel: r2,
            lhs: crate::attr::AttrSet::empty(),
            rhs: crate::attr::AttrSet::from_indices([1u16]),
        };
        assert!(CountBackend::fd_holds(&paged, &db2, &fd2));
        assert!(db2.fd_holds(&fd2));
        assert_eq!(paged.exec_stats().fallback_failures, 0);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn chunked_kernels_match_reference_across_thread_counts() {
        // DBRE_PAGED_THREADS is read per kernel call; every thread
        // count must give byte-identical answers. Concurrent paged
        // tests seeing the transient value is fine — that is exactly
        // the invariant under test.
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of("P", &[("x", Domain::Int), ("y", Domain::Int)]))
            .unwrap();
        let rows = PAGE_CODES * 5 + 321;
        for i in 0..rows {
            let x = if i % 53 == 0 {
                Value::Null
            } else {
                Value::Int((i % 2111) as i64)
            };
            db.insert(rel, vec![x, Value::Int((i % 17) as i64)])
                .unwrap();
        }
        let reference = ReferenceBackend;
        for threads in ["1", "2", "5"] {
            std::env::set_var("DBRE_PAGED_THREADS", threads);
            let paged = PagedBackend::new();
            for attrs in [vec![AttrId(0)], vec![AttrId(0), AttrId(1)]] {
                assert_eq!(
                    paged.count_distinct(&db, rel, &attrs),
                    reference.count_distinct(&db, rel, &attrs),
                    "threads={threads} attrs={attrs:?}"
                );
            }
            assert_eq!(
                *paged.lhs_groups(&db, rel, &[AttrId(0)]),
                *reference.lhs_groups(&db, rel, &[AttrId(0)]),
                "threads={threads}"
            );
            assert_eq!(
                *paged.lhs_groups(&db, rel, &[AttrId(0), AttrId(1)]),
                *reference.lhs_groups(&db, rel, &[AttrId(0), AttrId(1)]),
                "threads={threads}"
            );
            assert_eq!(
                *paged.partition1(&db, rel, AttrId(0)),
                *reference.partition1(&db, rel, AttrId(0)),
                "threads={threads}"
            );
            let fd = Fd {
                rel,
                lhs: crate::attr::AttrSet::from_indices([0u16]),
                rhs: crate::attr::AttrSet::from_indices([1u16]),
            };
            assert_eq!(
                CountBackend::fd_holds(&paged, &db, &fd),
                db.fd_holds(&fd),
                "threads={threads}"
            );
            assert_eq!(paged.exec_stats().fallback_failures, 0);
        }
        std::env::remove_var("DBRE_PAGED_THREADS");
    }

    #[test]
    fn adopt_spilled_serves_streamed_extension() {
        // A materialized twin provides the expected answers; the
        // streamed database never holds the values in memory.
        let mut twin = Database::new();
        let spec = [("x", Domain::Int), ("y", Domain::Text)];
        let trel = twin.add_relation(Relation::of("S", &spec)).unwrap();
        let rows = PAGE_CODES + 77;
        for i in 0..rows {
            let x = if i % 11 == 0 {
                Value::Null
            } else {
                Value::Int((i % 301) as i64)
            };
            twin.insert(trel, vec![x, Value::str(format!("s{}", i % 40))])
                .unwrap();
        }

        // Spill the twin's columns by hand, as streaming ingest would.
        let mut cols = Vec::new();
        for a in [AttrId(0), AttrId(1)] {
            let dict = ColumnDict::build(twin.table(trel).column(a));
            let file = PageFile::spill(dict.codes()).unwrap();
            cols.push(Arc::new(PagedColumn::new(Arc::new(dict.slim()), file)));
        }
        let spilled = crate::spill::SpilledTable::new(cols, rows, true);

        let mut db = Database::new();
        let rel = db.add_relation(Relation::of("S", &spec)).unwrap();
        db.set_streamed_extension(rel, rows);
        assert!(!db.table(rel).is_materialized());

        let paged = PagedBackend::new();
        paged.adopt_spilled(&db, rel, &spilled);
        assert_eq!(
            paged.spill_stats(),
            crate::spill::SpillCacheStats { hits: 1, misses: 0 }
        );

        let reference = ReferenceBackend;
        for attrs in [vec![AttrId(0)], vec![AttrId(1)], vec![AttrId(0), AttrId(1)]] {
            assert_eq!(
                paged.count_distinct(&db, rel, &attrs),
                reference.count_distinct(&twin, trel, &attrs),
                "{attrs:?}"
            );
        }
        assert_eq!(
            *paged.lhs_groups(&db, rel, &[AttrId(0)]),
            *reference.lhs_groups(&twin, trel, &[AttrId(0)])
        );
        let fd = Fd {
            rel,
            lhs: crate::attr::AttrSet::from_indices([0u16]),
            rhs: crate::attr::AttrSet::from_indices([1u16]),
        };
        let tfd = Fd {
            rel: trel,
            ..fd.clone()
        };
        assert_eq!(
            CountBackend::fd_holds(&paged, &db, &fd),
            twin.fd_holds(&tfd)
        );
        // The slim dictionaries still answer column_dict (rehydrated).
        let dict = CountBackend::column_dict(&paged, &db, rel, AttrId(0)).unwrap();
        let direct = ColumnDict::build(twin.table(trel).column(AttrId(0)));
        assert_eq!(dict.codes(), direct.codes());
        assert_eq!(paged.exec_stats().fallback_failures, 0);
    }

    #[test]
    #[should_panic(expected = "streamed extension")]
    fn streamed_extension_without_adoption_dies_instead_of_lying() {
        // Without adopt_spilled there are no pages AND no in-memory
        // values: the reference fallback would silently answer from an
        // empty column. The backend must refuse.
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of("V", &[("x", Domain::Int)]))
            .unwrap();
        db.set_streamed_extension(rel, 5);
        let paged = PagedBackend::new();
        let _ = paged.count_distinct(&db, rel, &[AttrId(0)]);
    }
}
