//! The paged columnar store: dictionary codes on disk, counting
//! kernels streaming over fixed-size pages.
//!
//! The in-memory backends cap the extension at what fits in RAM; the
//! paper's target — 100M-row legacy databases — does not. This module
//! keeps each encoded column's per-row `u32` codes (NULL = 0, exactly
//! the [`crate::encode::ColumnDict`] code space) in a spill file of
//! fixed [`PAGE_BYTES`] pages behind a small header, while the
//! *dictionary* halves (decode table, encode index, NULL count) stay
//! resident as a codes-free [`ColumnDict::slim`] copy. Every counting
//! kernel the pipeline needs — `count_distinct`, `join_stats`,
//! `lhs_groups`, counting-sort partitions — re-runs the PR 3 encoded
//! kernels page slice by page slice through a shared LRU
//! [`BufferPool`], so the resident working set is bounded by the pool
//! capacity, not the extension size.
//!
//! Cross-column kernels that never touch per-row codes —
//! [`crate::encode::intersect_count`], [`crate::encode::code_translation`],
//! [`crate::encode::decode_set_cols`] — are reused *unchanged* on the
//! slim dictionaries; only the row-scan loops needed paged twins.
//!
//! [`PagedBackend`] packages the store as the fourth
//! `BackendChoice`: spill-on-encode from the same generation-tagged
//! dictionary build the encoded backend performs, invalidation by
//! eviction ([`BufferPool::evict_file`]) when a table mutates, and a
//! reference fallback (counted in
//! [`BackendExecStats::fallback_failures`]) if a spill file ever
//! fails — an I/O error degrades a probe to the slow path, never to a
//! wrong answer or a panic.

use crate::attr::AttrId;
use crate::backend::{lhs_groups_reference, read_recover, write_recover, Tagged};
use crate::backend::{BackendExecStats, CountBackend};
use crate::bufpool::{BufferPool, PageCacheStats, PageKey};
use crate::counting::{join_stats, EquiJoin, JoinStats};
use crate::database::Database;
use crate::encode::{decode_set_cols, intersect_count, ColumnDict, EncodedSet, NULL_CODE};
use crate::fasthash::{FxHashMap, FxHashSet};
use crate::partitions::StrippedPartition;
use crate::schema::RelId;
use crate::table::ProjKey;
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Size of one on-disk code page in bytes (64 KiB).
pub const PAGE_BYTES: usize = 64 * 1024;
/// Codes per page (`PAGE_BYTES / 4`).
pub const PAGE_CODES: usize = PAGE_BYTES / 4;
/// Spill-file magic: format name + version.
const MAGIC: &[u8; 8] = b"DBREPG01";
/// Header bytes: magic, page size (u32), page count (u32), rows
/// (u64), FNV-1a checksum of the valid code stream (u64). All LE.
pub const HEADER_BYTES: usize = 32;

/// Typed failures of the paged store. Everything I/O-shaped carries a
/// rendered message (`std::io::Error` is neither `Clone` nor `Eq`,
/// which the [`crate::error::DbreError`] taxonomy requires).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// Underlying filesystem failure, rendered.
    Io(String),
    /// The file does not start with the spill-file magic.
    BadMagic,
    /// The header parsed but declares an impossible layout (e.g. a
    /// foreign page size).
    BadHeader(String),
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header implies.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The code stream does not hash to the header checksum.
    Checksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes on disk.
        actual: u64,
    },
    /// A page number past the end of the file was requested.
    PageOutOfBounds {
        /// Requested page.
        page: u32,
        /// Pages in the file.
        pages: u32,
    },
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::Io(m) => write!(f, "page file I/O error: {m}"),
            PageError::BadMagic => write!(f, "not a DBRE page file (bad magic)"),
            PageError::BadHeader(m) => write!(f, "bad page file header: {m}"),
            PageError::Truncated { expected, actual } => {
                write!(
                    f,
                    "page file truncated: {actual} bytes, header claims {expected}"
                )
            }
            PageError::Checksum { expected, actual } => {
                write!(
                    f,
                    "page file checksum mismatch: header {expected:#018x}, data {actual:#018x}"
                )
            }
            PageError::PageOutOfBounds { page, pages } => {
                write!(f, "page {page} out of bounds (file has {pages} pages)")
            }
        }
    }
}

impl std::error::Error for PageError {}

fn io_err(e: std::io::Error) -> PageError {
    PageError::Io(e.to_string())
}

/// FNV-1a over a code stream — cheap, dependency-free, good enough to
/// catch truncation-with-padding and bit rot in a spill file.
fn fnv1a64(mut hash: u64, codes: &[u32]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for c in codes {
        for b in c.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}
/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Process-unique spill-file ids; a rebuilt column gets a fresh id,
/// so the buffer pool can never serve pages of a dead generation.
static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// One column's codes spilled to disk: a header plus fixed-size pages
/// of little-endian `u32` codes, the last page zero-padded. Owned
/// files (created by [`PageFile::spill`]) are deleted on drop; files
/// opened from a path ([`PageFile::open`]) are left in place.
#[derive(Debug)]
pub struct PageFile {
    path: PathBuf,
    id: u64,
    pages: u32,
    rows: u64,
    checksum: u64,
    handle: Mutex<File>,
    owned: bool,
}

impl PageFile {
    /// Writes `codes` to a fresh spill file in the system temp
    /// directory and reopens it for reading.
    pub fn spill(codes: &[u32]) -> Result<PageFile, PageError> {
        let id = NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("dbre-pages-{}-{}.col", std::process::id(), id));
        let pages = codes.len().div_ceil(PAGE_CODES) as u32;
        let checksum = fnv1a64(FNV_OFFSET, codes);
        {
            let mut w = BufWriter::new(File::create(&path).map_err(io_err)?);
            let mut header = [0u8; HEADER_BYTES];
            header[0..8].copy_from_slice(MAGIC);
            header[8..12].copy_from_slice(&(PAGE_BYTES as u32).to_le_bytes());
            header[12..16].copy_from_slice(&pages.to_le_bytes());
            header[16..24].copy_from_slice(&(codes.len() as u64).to_le_bytes());
            header[24..32].copy_from_slice(&checksum.to_le_bytes());
            w.write_all(&header).map_err(io_err)?;
            let mut buf = vec![0u8; PAGE_BYTES];
            for chunk in codes.chunks(PAGE_CODES) {
                buf.iter_mut().for_each(|b| *b = 0);
                for (dst, c) in buf.chunks_exact_mut(4).zip(chunk) {
                    dst.copy_from_slice(&c.to_le_bytes());
                }
                w.write_all(&buf).map_err(io_err)?;
            }
            w.flush().map_err(io_err)?;
        }
        let handle = File::open(&path).map_err(io_err)?;
        Ok(PageFile {
            path,
            id,
            pages,
            rows: codes.len() as u64,
            checksum,
            handle: Mutex::new(handle),
            owned: true,
        })
    }

    /// Opens an existing spill file, validating magic, header layout
    /// and physical length (a truncated file fails here, not on a
    /// later page read). The file is *not* deleted on drop.
    pub fn open(path: &Path) -> Result<PageFile, PageError> {
        let mut f = File::open(path).map_err(io_err)?;
        let mut header = [0u8; HEADER_BYTES];
        f.read_exact(&mut header).map_err(|_| {
            let actual = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            PageError::Truncated {
                expected: HEADER_BYTES as u64,
                actual,
            }
        })?;
        if &header[0..8] != MAGIC {
            return Err(PageError::BadMagic);
        }
        let page_bytes = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if page_bytes as usize != PAGE_BYTES {
            return Err(PageError::BadHeader(format!(
                "page size {page_bytes}, this build uses {PAGE_BYTES}"
            )));
        }
        let pages = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        let mut rows8 = [0u8; 8];
        rows8.copy_from_slice(&header[16..24]);
        let rows = u64::from_le_bytes(rows8);
        let mut sum8 = [0u8; 8];
        sum8.copy_from_slice(&header[24..32]);
        let checksum = u64::from_le_bytes(sum8);
        if rows.div_ceil(PAGE_CODES as u64) != u64::from(pages) {
            return Err(PageError::BadHeader(format!(
                "{rows} rows do not fit {pages} pages"
            )));
        }
        let expected = HEADER_BYTES as u64 + u64::from(pages) * PAGE_BYTES as u64;
        let actual = f.metadata().map_err(io_err)?.len();
        if actual < expected {
            return Err(PageError::Truncated { expected, actual });
        }
        Ok(PageFile {
            path: path.to_path_buf(),
            id: NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed),
            pages,
            rows,
            checksum,
            handle: Mutex::new(f),
            owned: false,
        })
    }

    /// The process-unique id pages of this file are keyed under in
    /// the buffer pool.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Pages in the file.
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Rows (valid codes) the file holds.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The on-disk location (mostly for tests and diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads one page, trimmed to its valid codes (the tail page's
    /// zero padding never escapes — padding would be indistinguishable
    /// from NULLs).
    pub fn read_page(&self, page: u32) -> Result<Vec<u32>, PageError> {
        if page >= self.pages {
            return Err(PageError::PageOutOfBounds {
                page,
                pages: self.pages,
            });
        }
        let valid =
            (self.rows - u64::from(page) * PAGE_CODES as u64).min(PAGE_CODES as u64) as usize;
        let mut buf = vec![0u8; valid * 4];
        {
            let mut f = match self.handle.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            f.seek(SeekFrom::Start(
                HEADER_BYTES as u64 + u64::from(page) * PAGE_BYTES as u64,
            ))
            .map_err(io_err)?;
            f.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    PageError::Truncated {
                        expected: HEADER_BYTES as u64 + u64::from(self.pages) * PAGE_BYTES as u64,
                        actual: 0,
                    }
                } else {
                    io_err(e)
                }
            })?;
        }
        Ok(buf
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    /// Streams every page and compares the code stream against the
    /// header checksum — the integrity check for files of unknown
    /// provenance (crash recovery, the fuzz corpus).
    pub fn verify_checksum(&self) -> Result<(), PageError> {
        let mut hash = FNV_OFFSET;
        for p in 0..self.pages {
            hash = fnv1a64(hash, &self.read_page(p)?);
        }
        if hash != self.checksum {
            return Err(PageError::Checksum {
                expected: self.checksum,
                actual: hash,
            });
        }
        Ok(())
    }
}

impl Drop for PageFile {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// One column of the paged store: the resident slim dictionary plus
/// the spilled code pages.
#[derive(Debug)]
pub struct PagedColumn {
    /// Codes-free dictionary ([`ColumnDict::slim`]): decode/encode
    /// tables and NULL count, no per-row vector.
    dict: Arc<ColumnDict>,
    rows: usize,
    file: PageFile,
}

impl PagedColumn {
    /// Spills a fully built dictionary's codes to disk and keeps only
    /// the slim half resident.
    pub fn from_dict(full: &ColumnDict) -> Result<PagedColumn, PageError> {
        let file = PageFile::spill(full.codes())?;
        Ok(PagedColumn {
            dict: Arc::new(full.slim()),
            rows: full.rows(),
            file,
        })
    }

    /// The resident slim dictionary.
    pub fn dict(&self) -> &Arc<ColumnDict> {
        &self.dict
    }

    /// Rows the column encodes.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The spill file.
    pub fn file(&self) -> &PageFile {
        &self.file
    }

    /// One page of codes through the pool.
    pub fn page(&self, pool: &BufferPool, page: u32) -> Result<Arc<Vec<u32>>, PageError> {
        pool.get_or_load(
            PageKey {
                file: self.file.id,
                page,
            },
            || self.file.read_page(page),
        )
    }

    /// Rehydrates the full per-row code vector by streaming every
    /// page — the bridge for consumers that need random access
    /// (`column_dict()` for the batch SQL executor).
    pub fn read_all_codes(&self, pool: &BufferPool) -> Result<Vec<u32>, PageError> {
        let mut codes = Vec::with_capacity(self.rows);
        for p in 0..self.file.pages {
            codes.extend_from_slice(&self.page(pool, p)?);
        }
        Ok(codes)
    }
}

/// Streams the columns' pages in lockstep: `f(base_row, slices)` is
/// called once per page with each column's codes for that page. All
/// columns must encode the same row count (same table). Holding the
/// `Arc`s across the callback keeps the data alive even if the pool
/// evicts the entry mid-iteration, so a capacity-1 pool is slow but
/// never wrong.
fn stream_pages<F>(
    cols: &[&PagedColumn],
    rows: usize,
    pool: &BufferPool,
    mut f: F,
) -> Result<(), PageError>
where
    F: FnMut(usize, &[&[u32]]),
{
    debug_assert!(cols.iter().all(|c| c.rows == rows));
    let pages = rows.div_ceil(PAGE_CODES);
    for p in 0..pages {
        let owned: Vec<Arc<Vec<u32>>> = cols
            .iter()
            .map(|c| c.page(pool, p as u32))
            .collect::<Result<_, _>>()?;
        let slices: Vec<&[u32]> = owned.iter().map(|a| a.as_slice()).collect();
        f(p * PAGE_CODES, &slices);
    }
    Ok(())
}

#[inline]
fn pack2(hi: u32, lo: u32) -> u64 {
    (u64::from(hi) << 32) | u64::from(lo)
}

/// Paged twin of [`crate::encode::distinct_codes_cols`]: the distinct
/// non-NULL projected code tuples, streamed page by page.
pub fn distinct_codes_paged(
    cols: &[&PagedColumn],
    rows: usize,
    pool: &BufferPool,
) -> Result<EncodedSet, PageError> {
    match cols {
        [] => {
            let mut s: FxHashSet<Box<[u32]>> = FxHashSet::default();
            if rows > 0 {
                s.insert(Box::from([]));
            }
            Ok(EncodedSet::Wide(s))
        }
        [c] => Ok(EncodedSet::Unary {
            card: c.dict.cardinality() as u32,
        }),
        [ca, cb] => {
            let cap = (ca.dict.cardinality() as u64 * cb.dict.cardinality() as u64).min(rows as u64)
                as usize;
            let mut set: FxHashSet<u64> =
                FxHashSet::with_capacity_and_hasher(cap, Default::default());
            stream_pages(cols, rows, pool, |_, slices| {
                for (&x, &y) in slices[0].iter().zip(slices[1]) {
                    if x != NULL_CODE && y != NULL_CODE {
                        set.insert(pack2(x, y));
                    }
                }
            })?;
            Ok(EncodedSet::Packed(set))
        }
        _ => {
            let mut set: FxHashSet<Box<[u32]>> = FxHashSet::default();
            let mut scratch: Vec<u32> = vec![0; cols.len()];
            stream_pages(cols, rows, pool, |_, slices| {
                'rows: for i in 0..slices[0].len() {
                    for (s, c) in scratch.iter_mut().zip(slices) {
                        let code = c[i];
                        if code == NULL_CODE {
                            continue 'rows;
                        }
                        *s = code;
                    }
                    if !set.contains(scratch.as_slice()) {
                        set.insert(scratch.clone().into_boxed_slice());
                    }
                }
            })?;
            Ok(EncodedSet::Wide(set))
        }
    }
}

/// Paged twin of [`crate::encode::count_distinct_cols`], including
/// the dense-bitset pair fast path.
pub fn count_distinct_paged(
    cols: &[&PagedColumn],
    rows: usize,
    pool: &BufferPool,
) -> Result<usize, PageError> {
    match cols {
        [c] => Ok(c.dict.cardinality()),
        [ca, cb] => {
            let domain = ca.dict.cardinality() as u64 * cb.dict.cardinality() as u64;
            const BITSET_MAX: u64 = 1 << 22;
            if domain > 0 && domain <= BITSET_MAX {
                let width = cb.dict.cardinality() as u64;
                let mut bits = vec![0u64; (domain as usize).div_ceil(64)];
                let mut count = 0usize;
                stream_pages(cols, rows, pool, |_, slices| {
                    for (&x, &y) in slices[0].iter().zip(slices[1]) {
                        if x == NULL_CODE || y == NULL_CODE {
                            continue;
                        }
                        let idx = (u64::from(x) - 1) * width + (u64::from(y) - 1);
                        let (w, m) = ((idx / 64) as usize, 1u64 << (idx % 64));
                        if bits[w] & m == 0 {
                            bits[w] |= m;
                            count += 1;
                        }
                    }
                })?;
                Ok(count)
            } else {
                Ok(distinct_codes_paged(cols, rows, pool)?.len())
            }
        }
        _ => Ok(distinct_codes_paged(cols, rows, pool)?.len()),
    }
}

/// Paged twin of [`crate::encode::lhs_groups_cols`]: SQL-semantics
/// row groups (size ≥ 2), page base offsets restoring global row ids.
pub fn lhs_groups_paged(
    cols: &[&PagedColumn],
    rows: usize,
    pool: &BufferPool,
) -> Result<Vec<Vec<usize>>, PageError> {
    match cols {
        [] => Ok(if rows >= 2 {
            vec![(0..rows).collect()]
        } else {
            Vec::new()
        }),
        [col] => {
            // Two streaming passes, same counting-sort shape as the
            // in-memory kernel: sizes first so singletons never
            // allocate, then fill.
            let domain = col.dict.cardinality() + 1;
            let mut counts: Vec<u32> = vec![0; domain];
            stream_pages(cols, rows, pool, |_, slices| {
                for &c in slices[0] {
                    if c != NULL_CODE {
                        counts[c as usize] += 1;
                    }
                }
            })?;
            let mut slots: Vec<u32> = vec![u32::MAX; domain];
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for (c, &n) in counts.iter().enumerate() {
                if n >= 2 {
                    slots[c] = groups.len() as u32;
                    groups.push(Vec::with_capacity(n as usize));
                }
            }
            stream_pages(cols, rows, pool, |base, slices| {
                for (i, &c) in slices[0].iter().enumerate() {
                    let s = slots[c as usize];
                    if c != NULL_CODE && s != u32::MAX {
                        groups[s as usize].push(base + i);
                    }
                }
            })?;
            groups.sort();
            Ok(groups)
        }
        [_, _] => {
            let mut map: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
            stream_pages(cols, rows, pool, |base, slices| {
                for (i, (&x, &y)) in slices[0].iter().zip(slices[1]).enumerate() {
                    if x != NULL_CODE && y != NULL_CODE {
                        map.entry(pack2(x, y)).or_default().push(base + i);
                    }
                }
            })?;
            let mut groups: Vec<Vec<usize>> = map.into_values().filter(|g| g.len() >= 2).collect();
            groups.sort();
            Ok(groups)
        }
        _ => {
            let mut map: FxHashMap<Box<[u32]>, Vec<usize>> = FxHashMap::default();
            let mut scratch: Vec<u32> = vec![0; cols.len()];
            stream_pages(cols, rows, pool, |base, slices| {
                'rows: for i in 0..slices[0].len() {
                    for (s, c) in scratch.iter_mut().zip(slices) {
                        let code = c[i];
                        if code == NULL_CODE {
                            continue 'rows;
                        }
                        *s = code;
                    }
                    if let Some(g) = map.get_mut(scratch.as_slice()) {
                        g.push(base + i);
                    } else {
                        map.insert(scratch.clone().into_boxed_slice(), vec![base + i]);
                    }
                }
            })?;
            let mut groups: Vec<Vec<usize>> = map.into_values().filter(|g| g.len() >= 2).collect();
            groups.sort();
            Ok(groups)
        }
    }
}

/// Paged twin of [`crate::encode::partition1_col`]: the unary
/// stripped partition (mining convention, NULL = NULL) in two
/// counting-sort streaming passes.
pub fn partition1_paged(
    col: &PagedColumn,
    pool: &BufferPool,
) -> Result<StrippedPartition, PageError> {
    let domain = col.dict.cardinality() + 1;
    let mut counts: Vec<u32> = vec![0; domain];
    let cols = [col];
    stream_pages(&cols, col.rows, pool, |_, slices| {
        for &c in slices[0] {
            counts[c as usize] += 1;
        }
    })?;
    let mut slots: Vec<u32> = vec![u32::MAX; domain];
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for (c, &n) in counts.iter().enumerate() {
        if n >= 2 {
            slots[c] = classes.len() as u32;
            classes.push(Vec::with_capacity(n as usize));
        }
    }
    stream_pages(&cols, col.rows, pool, |base, slices| {
        for (i, &c) in slices[0].iter().enumerate() {
            let s = slots[c as usize];
            if s != u32::MAX {
                classes[s as usize].push(base + i);
            }
        }
    })?;
    classes.sort();
    Ok(StrippedPartition {
        classes,
        rows: col.rows,
    })
}

/// The out-of-core counting backend: encoded kernels streaming over
/// spilled code pages through a capacity-bounded [`BufferPool`].
///
/// Column encoding happens exactly as in the encoded backend (one
/// interning pass per column per table generation), but the per-row
/// codes are spilled to a page file immediately and only the slim
/// dictionary stays resident. A table mutation (generation bump)
/// replaces the spill file and purges its pages from the pool; a
/// spill or read failure degrades the probe to the `Value`-based
/// reference semantics and increments
/// [`BackendExecStats::fallback_failures`].
pub struct PagedBackend {
    pool: Arc<BufferPool>,
    columns: RwLock<HashMap<(RelId, AttrId), Tagged<PagedColumn>>>,
    /// Rehydrated full dictionaries for the `column_dict()` seam —
    /// built on demand by streaming every page, then cached per
    /// generation like any other derived structure.
    hydrated: RwLock<HashMap<(RelId, AttrId), Tagged<ColumnDict>>>,
    fallbacks: AtomicU64,
}

impl Default for PagedBackend {
    fn default() -> Self {
        PagedBackend::new()
    }
}

impl PagedBackend {
    /// A paged backend with the default 64 MiB buffer pool.
    pub fn new() -> Self {
        PagedBackend::with_pool(Arc::new(BufferPool::default()))
    }

    /// A paged backend whose pool holds at most `bytes` of page data.
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        PagedBackend::with_pool(Arc::new(BufferPool::with_capacity_bytes(bytes)))
    }

    /// A paged backend over an explicit (possibly shared) pool.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        PagedBackend {
            pool,
            columns: RwLock::new(HashMap::new()),
            hydrated: RwLock::new(HashMap::new()),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// The backend's buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The paged encoding of one column, spilled once per table
    /// generation. A stale entry's pages are purged from the pool
    /// before the replacement is adopted (invalidation by eviction).
    pub fn paged_column(
        &self,
        db: &Database,
        rel: RelId,
        attr: AttrId,
    ) -> Result<Arc<PagedColumn>, PageError> {
        let gen = db.generation(rel);
        let key = (rel, attr);
        if let Some(entry) = read_recover(&self.columns).get(&key) {
            if entry.gen == gen {
                return Ok(Arc::clone(&entry.value));
            }
        }
        let full = ColumnDict::build(db.table(rel).column(attr));
        let value = Arc::new(PagedColumn::from_dict(&full)?);
        drop(full);
        let mut columns = write_recover(&self.columns);
        if let Some(entry) = columns.get(&key) {
            if entry.gen == gen {
                return Ok(Arc::clone(&entry.value));
            }
        }
        if let Some(stale) = columns.insert(
            key,
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        ) {
            self.pool.evict_file(stale.value.file.id);
        }
        Ok(value)
    }

    fn attr_columns(
        &self,
        db: &Database,
        rel: RelId,
        attrs: &[AttrId],
    ) -> Result<Vec<Arc<PagedColumn>>, PageError> {
        attrs
            .iter()
            .map(|a| self.paged_column(db, rel, *a))
            .collect()
    }

    fn note_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }
}

impl CountBackend for PagedBackend {
    fn name(&self) -> &'static str {
        "paged"
    }

    fn count_distinct(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        let rows = db.table(rel).len();
        let probe = self.attr_columns(db, rel, attrs).and_then(|cols| {
            let refs: Vec<&PagedColumn> = cols.iter().map(Arc::as_ref).collect();
            count_distinct_paged(&refs, rows, &self.pool)
        });
        match probe {
            Ok(n) => n,
            Err(_) => {
                self.note_fallback();
                db.table(rel).count_distinct(attrs)
            }
        }
    }

    fn join_stats(&self, db: &Database, join: &EquiJoin) -> JoinStats {
        let probe = (|| -> Result<JoinStats, PageError> {
            let lrows = db.table(join.left.rel).len();
            let rrows = db.table(join.right.rel).len();
            let lcols = self.attr_columns(db, join.left.rel, &join.left.attrs)?;
            let rcols = self.attr_columns(db, join.right.rel, &join.right.attrs)?;
            let lrefs: Vec<&PagedColumn> = lcols.iter().map(Arc::as_ref).collect();
            let rrefs: Vec<&PagedColumn> = rcols.iter().map(Arc::as_ref).collect();
            let lset = distinct_codes_paged(&lrefs, lrows, &self.pool)?;
            let rset = distinct_codes_paged(&rrefs, rrows, &self.pool)?;
            // The intersection kernel reads only dictionary lookups
            // (`code_translation`, `code_of`), never per-row codes, so
            // the slim dictionaries drive it unchanged.
            let ldicts: Vec<&ColumnDict> = lcols.iter().map(|c| c.dict.as_ref()).collect();
            let rdicts: Vec<&ColumnDict> = rcols.iter().map(|c| c.dict.as_ref()).collect();
            let n_join = intersect_count(&ldicts, &lset, &rdicts, &rset);
            Ok(JoinStats {
                n_left: lset.len(),
                n_right: rset.len(),
                n_join,
            })
        })();
        match probe {
            Ok(s) => s,
            Err(_) => {
                self.note_fallback();
                join_stats(db, join)
            }
        }
    }

    fn lhs_groups(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<Vec<Vec<usize>>> {
        let rows = db.table(rel).len();
        let probe = self.attr_columns(db, rel, attrs).and_then(|cols| {
            let refs: Vec<&PagedColumn> = cols.iter().map(Arc::as_ref).collect();
            lhs_groups_paged(&refs, rows, &self.pool)
        });
        match probe {
            Ok(groups) => Arc::new(groups),
            Err(_) => {
                self.note_fallback();
                Arc::new(lhs_groups_reference(db, rel, attrs))
            }
        }
    }

    fn projection(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<HashSet<ProjKey>> {
        let rows = db.table(rel).len();
        let probe = self.attr_columns(db, rel, attrs).and_then(|cols| {
            let refs: Vec<&PagedColumn> = cols.iter().map(Arc::as_ref).collect();
            let set = distinct_codes_paged(&refs, rows, &self.pool)?;
            // Decoding touches only the decode tables of the slim
            // dictionaries.
            let dicts: Vec<&ColumnDict> = cols.iter().map(|c| c.dict.as_ref()).collect();
            Ok(decode_set_cols(&dicts, &set))
        });
        match probe {
            Ok(set) => Arc::new(set),
            Err(_) => {
                self.note_fallback();
                Arc::new(db.table(rel).distinct_projection(attrs))
            }
        }
    }

    fn partition1(&self, db: &Database, rel: RelId, attr: AttrId) -> Arc<StrippedPartition> {
        let probe = self
            .paged_column(db, rel, attr)
            .and_then(|col| partition1_paged(&col, &self.pool));
        match probe {
            Ok(p) => Arc::new(p),
            Err(_) => {
                self.note_fallback();
                Arc::new(StrippedPartition::for_attribute(db.table(rel), attr))
            }
        }
    }

    fn prewarm(&self, db: &Database, rel: RelId) {
        // Spill every column while the rows are hot; a failed spill is
        // retried (and fallback-counted) by whichever probe needs it.
        let arity = db.table(rel).arity();
        for i in 0..arity {
            let _ = self.paged_column(db, rel, AttrId(i as u16));
        }
    }

    fn column_dict(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<Arc<ColumnDict>> {
        let gen = db.generation(rel);
        let key = (rel, attr);
        if let Some(entry) = read_recover(&self.hydrated).get(&key) {
            if entry.gen == gen {
                return Some(Arc::clone(&entry.value));
            }
        }
        let col = self.paged_column(db, rel, attr).ok()?;
        let codes = match col.read_all_codes(&self.pool) {
            Ok(c) => c,
            Err(_) => {
                self.note_fallback();
                return None;
            }
        };
        let value = Arc::new(col.dict.rehydrate(codes));
        let mut hydrated = write_recover(&self.hydrated);
        if let Some(entry) = hydrated.get(&key) {
            if entry.gen == gen {
                return Some(Arc::clone(&entry.value));
            }
        }
        hydrated.insert(
            key,
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        );
        Some(value)
    }

    fn exec_stats(&self) -> BackendExecStats {
        BackendExecStats {
            fallback_failures: self.fallbacks.load(Ordering::Relaxed),
            ..BackendExecStats::default()
        }
    }

    fn page_stats(&self) -> PageCacheStats {
        self.pool.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{EncodedBackend, ReferenceBackend};
    use crate::deps::IndSide;
    use crate::schema::Relation;
    use crate::value::{Domain, Value};

    fn sample_db() -> (Database, RelId, RelId) {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("a", Domain::Int), ("b", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("c", Domain::Int)]))
            .unwrap();
        for (a, b) in [(1, 10), (1, 10), (2, 20), (3, 20), (4, 30)] {
            db.insert(l, vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        db.insert(l, vec![Value::Null, Value::Int(40)]).unwrap();
        for c in [1, 2, 3, 9] {
            db.insert(r, vec![Value::Int(c)]).unwrap();
        }
        (db, l, r)
    }

    #[test]
    fn page_file_round_trips_codes() {
        let codes: Vec<u32> = (0..PAGE_CODES as u32 * 2 + 17).map(|i| i % 977).collect();
        let f = PageFile::spill(&codes).unwrap();
        assert_eq!(f.pages(), 3);
        assert_eq!(f.rows(), codes.len() as u64);
        let mut back = Vec::new();
        for p in 0..f.pages() {
            back.extend_from_slice(&f.read_page(p).unwrap());
        }
        assert_eq!(back, codes);
        f.verify_checksum().unwrap();
        assert!(matches!(
            f.read_page(3),
            Err(PageError::PageOutOfBounds { page: 3, pages: 3 })
        ));
    }

    #[test]
    fn spill_file_is_deleted_on_drop() {
        let f = PageFile::spill(&[1, 2, 3]).unwrap();
        let path = f.path().to_path_buf();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists());
    }

    #[test]
    fn open_rejects_truncation_magic_and_checksum() {
        let codes: Vec<u32> = (0..PAGE_CODES as u32 + 5).collect();
        let f = PageFile::spill(&codes).unwrap();
        let bytes = std::fs::read(f.path()).unwrap();
        let dir = std::env::temp_dir();
        let stamp = std::process::id();

        // Truncated mid-page.
        let t = dir.join(format!("dbre-test-trunc-{stamp}.col"));
        std::fs::write(&t, &bytes[..bytes.len() - PAGE_BYTES / 2]).unwrap();
        assert!(matches!(
            PageFile::open(&t),
            Err(PageError::Truncated { .. })
        ));

        // Foreign magic.
        let m = dir.join(format!("dbre-test-magic-{stamp}.col"));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        std::fs::write(&m, &bad).unwrap();
        assert!(matches!(PageFile::open(&m), Err(PageError::BadMagic)));

        // Flipped code bytes: header parses, checksum catches it.
        let c = dir.join(format!("dbre-test-sum-{stamp}.col"));
        let mut bad = bytes.clone();
        bad[HEADER_BYTES + 8] ^= 0xff;
        std::fs::write(&c, &bad).unwrap();
        let opened = PageFile::open(&c).unwrap();
        assert!(matches!(
            opened.verify_checksum(),
            Err(PageError::Checksum { .. })
        ));

        for p in [t, m, c] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn paged_backend_matches_reference_and_encoded() {
        let (db, l, r) = sample_db();
        let reference = ReferenceBackend;
        let encoded = EncodedBackend::new();
        // One page worth of pool is enough for correctness.
        let paged = PagedBackend::with_capacity_bytes(PAGE_BYTES);
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        for attrs in [vec![AttrId(0)], vec![AttrId(0), AttrId(1)]] {
            assert_eq!(
                paged.count_distinct(&db, l, &attrs),
                reference.count_distinct(&db, l, &attrs)
            );
            assert_eq!(
                *paged.lhs_groups(&db, l, &attrs),
                *reference.lhs_groups(&db, l, &attrs)
            );
            assert_eq!(
                *paged.projection(&db, l, &attrs),
                *reference.projection(&db, l, &attrs)
            );
        }
        assert_eq!(paged.join_stats(&db, &join), encoded.join_stats(&db, &join));
        assert_eq!(
            *paged.partition1(&db, l, AttrId(1)),
            *reference.partition1(&db, l, AttrId(1))
        );
        assert_eq!(paged.exec_stats().fallback_failures, 0);
        let stats = paged.page_stats();
        assert!(stats.hits + stats.misses > 0, "probes must touch the pool");
    }

    #[test]
    fn mutation_invalidates_and_purges_pages() {
        let (mut db, l, _) = sample_db();
        let paged = PagedBackend::new();
        assert_eq!(paged.count_distinct(&db, l, &[AttrId(0)]), 4);
        let old_file = paged.paged_column(&db, l, AttrId(0)).unwrap().file().id();
        db.insert(l, vec![Value::Int(99), Value::Int(1)]).unwrap();
        assert_eq!(paged.count_distinct(&db, l, &[AttrId(0)]), 5);
        let new_file = paged.paged_column(&db, l, AttrId(0)).unwrap().file().id();
        assert_ne!(old_file, new_file, "mutation must respill the column");
    }

    #[test]
    fn column_dict_rehydrates_full_codes() {
        let (db, l, _) = sample_db();
        let paged = PagedBackend::new();
        let dict = CountBackend::column_dict(&paged, &db, l, AttrId(0)).unwrap();
        let direct = ColumnDict::build(db.table(l).column(AttrId(0)));
        assert_eq!(dict.codes(), direct.codes());
        assert_eq!(dict.cardinality(), direct.cardinality());
        assert_eq!(dict.null_count(), direct.null_count());
    }

    #[test]
    fn multi_page_columns_stream_correctly() {
        // Enough rows for several pages, with NULLs and duplicates.
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of("T", &[("x", Domain::Int), ("y", Domain::Int)]))
            .unwrap();
        let rows = PAGE_CODES * 2 + 123;
        for i in 0..rows {
            let x = if i % 97 == 0 {
                Value::Null
            } else {
                Value::Int((i % 1009) as i64)
            };
            db.insert(rel, vec![x, Value::Int((i % 31) as i64)])
                .unwrap();
        }
        let reference = ReferenceBackend;
        let paged = PagedBackend::with_capacity_bytes(PAGE_BYTES); // 1-page pool: constant churn
        for attrs in [vec![AttrId(0)], vec![AttrId(1)], vec![AttrId(0), AttrId(1)]] {
            assert_eq!(
                paged.count_distinct(&db, rel, &attrs),
                reference.count_distinct(&db, rel, &attrs),
                "{attrs:?}"
            );
        }
        assert_eq!(
            *paged.lhs_groups(&db, rel, &[AttrId(1)]),
            *reference.lhs_groups(&db, rel, &[AttrId(1)])
        );
        assert_eq!(
            *paged.partition1(&db, rel, AttrId(0)),
            *reference.partition1(&db, rel, AttrId(0))
        );
        assert!(paged.page_stats().evictions > 0, "1-page pool must churn");
        assert_eq!(paged.exec_stats().fallback_failures, 0);
    }
}
