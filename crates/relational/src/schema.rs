//! Relation schemas and the database schema `R`.

use crate::attr::{AttrId, AttrSet, Attribute};
use crate::error::RelationalError;
use crate::value::Domain;
use std::collections::HashMap;
use std::fmt;

/// Index of a relation within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl RelId {
    /// The raw index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A relation `R_i(X_i)`: a name plus an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Relation name (unique in the schema, case-sensitive here; the SQL
    /// layer normalizes case before reaching this type).
    pub name: String,
    attrs: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl Relation {
    /// Creates a relation; fails on duplicate attribute names.
    pub fn new(name: impl Into<String>, attrs: Vec<Attribute>) -> Result<Self, RelationalError> {
        let name = name.into();
        if attrs.len() > u16::MAX as usize {
            return Err(RelationalError::TooManyAttributes(name));
        }
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            if by_name.insert(a.name.clone(), AttrId(i as u16)).is_some() {
                return Err(RelationalError::DuplicateAttribute {
                    relation: name,
                    attribute: a.name.clone(),
                });
            }
        }
        Ok(Relation {
            name,
            attrs,
            by_name,
        })
    }

    /// Builder from `(name, domain)` pairs; panics on duplicates —
    /// intended for literals in tests and examples.
    pub fn of(name: &str, cols: &[(&str, Domain)]) -> Self {
        // A panicking builder by contract (see the doc comment): it
        // exists for hand-written literals where a duplicate name is a
        // typo, not a runtime condition.
        #[allow(clippy::expect_used)]
        Relation::new(
            name,
            cols.iter().map(|(n, d)| Attribute::new(*n, *d)).collect(),
        )
        .expect("duplicate attribute in Relation::of literal")
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Attribute by id.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// Attribute name by id.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()].name
    }

    /// Looks an attribute up by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Resolves a list of names to an ordered id vector (order preserved,
    /// not a set — inclusion dependencies need positional correspondence).
    pub fn attr_ids(&self, names: &[&str]) -> Result<Vec<AttrId>, RelationalError> {
        names
            .iter()
            .map(|n| {
                self.attr_id(n)
                    .ok_or_else(|| RelationalError::UnknownAttribute {
                        relation: self.name.clone(),
                        attribute: (*n).to_string(),
                    })
            })
            .collect()
    }

    /// Resolves names to an [`AttrSet`].
    pub fn attr_set(&self, names: &[&str]) -> Result<AttrSet, RelationalError> {
        Ok(AttrSet::from_iter_ids(self.attr_ids(names)?))
    }

    /// The set of *all* attribute ids (`X_i`).
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::from_indices(0..self.attrs.len() as u16)
    }

    /// Renders an attribute set as comma-separated names.
    pub fn render_set(&self, set: &AttrSet) -> String {
        let mut out = String::new();
        for (i, a) in set.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(self.attr_name(a));
        }
        out
    }
}

/// The set `R` of relations of a database schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<Relation>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Adds a relation; fails on duplicate relation names.
    pub fn add_relation(&mut self, rel: Relation) -> Result<RelId, RelationalError> {
        if self.by_name.contains_key(&rel.name) {
            return Err(RelationalError::DuplicateRelation(rel.name));
        }
        let id = RelId(self.relations.len() as u32);
        self.by_name.insert(rel.name.clone(), id);
        self.relations.push(rel);
        Ok(id)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Relation by id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Replaces a relation in place, keeping its id. The new relation
    /// keeps the old name unless renamed consistently.
    pub fn replace_relation(&mut self, id: RelId, rel: Relation) -> Result<(), RelationalError> {
        let old_name = self.relations[id.index()].name.clone();
        if rel.name != old_name {
            if self.by_name.contains_key(&rel.name) {
                return Err(RelationalError::DuplicateRelation(rel.name));
            }
            self.by_name.remove(&old_name);
            self.by_name.insert(rel.name.clone(), id);
        }
        self.relations[id.index()] = rel;
        Ok(())
    }

    /// Looks a relation up by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<&Relation> {
        self.rel_id(name).map(|id| self.relation(id))
    }

    /// Iterates `(RelId, &Relation)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }
}

/// A qualified attribute set `R.X` — the unit the paper's `LHS` and `H`
/// sets are made of (e.g. `HEmployee.{no}`, `Assignment.{dep}`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QualAttrs {
    /// The relation.
    pub rel: RelId,
    /// The attribute set within that relation.
    pub attrs: AttrSet,
}

impl QualAttrs {
    /// Creates a qualified attribute set.
    pub fn new(rel: RelId, attrs: AttrSet) -> Self {
        QualAttrs { rel, attrs }
    }

    /// Renders `Relation.{a, b}` using schema names.
    pub fn render(&self, schema: &Schema) -> String {
        let r = schema.relation(self.rel);
        format!("{}.{{{}}}", r.name, r.render_set(&self.attrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person() -> Relation {
        Relation::of(
            "Person",
            &[
                ("id", Domain::Int),
                ("name", Domain::Text),
                ("zip", Domain::Text),
            ],
        )
    }

    #[test]
    fn relation_lookup() {
        let r = person();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.attr_id("zip"), Some(AttrId(2)));
        assert_eq!(r.attr_id("nope"), None);
        assert_eq!(r.attr_name(AttrId(0)), "id");
        assert_eq!(r.all_attrs().len(), 3);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Relation::new("R", vec![Attribute::int("a"), Attribute::int("a")]).unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateAttribute { .. }));
    }

    #[test]
    fn attr_ids_preserve_order() {
        let r = person();
        let ids = r.attr_ids(&["zip", "id"]).unwrap();
        assert_eq!(ids, vec![AttrId(2), AttrId(0)]);
        assert!(r.attr_ids(&["ghost"]).is_err());
    }

    #[test]
    fn schema_add_and_lookup() {
        let mut s = Schema::new();
        let id = s.add_relation(person()).unwrap();
        assert_eq!(s.rel_id("Person"), Some(id));
        assert_eq!(s.relation(id).name, "Person");
        assert!(s.add_relation(person()).is_err());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn replace_relation_renames() {
        let mut s = Schema::new();
        let id = s.add_relation(person()).unwrap();
        let smaller = Relation::of("Person2", &[("id", Domain::Int)]);
        s.replace_relation(id, smaller).unwrap();
        assert_eq!(s.rel_id("Person"), None);
        assert_eq!(s.rel_id("Person2"), Some(id));
        assert_eq!(s.relation(id).arity(), 1);
    }

    #[test]
    fn qual_attrs_render() {
        let mut s = Schema::new();
        let id = s.add_relation(person()).unwrap();
        let q = QualAttrs::new(id, s.relation(id).attr_set(&["id", "zip"]).unwrap());
        assert_eq!(q.render(&s), "Person.{id, zip}");
    }

    #[test]
    fn render_set_names() {
        let r = person();
        let set = r.attr_set(&["name", "id"]).unwrap();
        assert_eq!(r.render_set(&set), "id, name");
    }
}
