//! A fast, non-cryptographic hasher for the integer-code kernels.
//!
//! The dictionary-encoded hot paths ([`crate::encode`]) hash small
//! fixed-size keys — interned `Value`s once per row, then packed `u64`
//! pairs and short `u32` tuples everywhere after. The standard
//! library's default SipHash is keyed and DoS-resistant, which none of
//! these internal, non-adversarial tables need; its per-key cost
//! dominates the kernels. This module is the classic Fx multiply-xor
//! scheme (as used by rustc): one rotate, one xor, one multiply per
//! word. It is *not* HashDoS-resistant — use it only for keys derived
//! from data the process already holds, never for keys an external
//! client can choose freely.
//!
//! No third-party crates: the whole hasher is the ~40 lines below.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx scheme: a prime close to the golden ratio of
/// 2^64, spreading consecutive small integers across the hash space.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-at-a-time hasher. Deterministic (unkeyed) — equal keys
/// hash equally across maps, processes, and runs.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            self.add(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equally_and_deterministically() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Int(7)));
        assert_eq!(
            hash_of(&Value::str("abcdefghij")),
            hash_of(&Value::str("abcdefghij"))
        );
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn consecutive_codes_spread() {
        // Dense dictionary codes must not collide in the low bits the
        // hash map actually indexes with.
        let low_bits: FxHashSet<u64> = (0u32..1024).map(|c| hash_of(&c) >> 57).collect();
        assert!(low_bits.len() > 32, "top bits too clustered");
    }

    #[test]
    fn works_as_map_and_set_state() {
        let mut m: FxHashMap<Value, u32> = FxHashMap::default();
        m.insert(Value::str("x"), 1);
        m.insert(Value::Null, 2);
        assert_eq!(m.get(&Value::str("x")), Some(&1));
        let mut s: FxHashSet<Box<[u32]>> = FxHashSet::default();
        s.insert(Box::from([1u32, 2]));
        assert!(s.contains([1u32, 2].as_slice()));
    }
}
