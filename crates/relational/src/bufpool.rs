//! LRU buffer pool for the paged columnar store.
//!
//! The paged backend ([`crate::pages`]) keeps dictionary codes on disk
//! in fixed-size pages and streams every counting kernel over them.
//! This module is the memory side of that design: a shared
//! [`BufferPool`] caches decoded code pages under a hard page-count
//! capacity, evicting least-recently-used pages when a load would
//! exceed it. The pool is the *only* place page bytes live in memory,
//! so its capacity bounds the resident working set of an out-of-core
//! run no matter how many columns or tables a probe touches.
//!
//! Keys are `(file id, page number)` pairs — file ids are unique per
//! spill file for the lifetime of the process, so a rebuilt column
//! (new generation, new spill file) can never alias a stale page.
//! Invalidation is *by eviction*: when the paged backend drops a
//! column because its table mutated, it calls
//! [`BufferPool::evict_file`] to purge every cached page of the old
//! spill file.
//!
//! Hit/miss/eviction counters are kept in atomics and snapshot as
//! [`PageCacheStats`] — plumbed through the `CountBackend` seam into
//! `PipelineStats` so the CLI can report cache behaviour per run.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one cached page: which spill file, which page in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Process-unique id of the spill file (see `pages::PageFile`).
    pub file: u64,
    /// Zero-based page number within the file.
    pub page: u32,
}

/// Counters describing how a buffer pool served its loads.
///
/// Snapshot via [`BufferPool::stats`]; all-zero for runs that never
/// touched the paged store. `hits + misses` is the total number of
/// page requests; `evictions` counts pages dropped to stay under
/// capacity (file-invalidation purges are not evictions — they remove
/// pages that could never be served again).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to load from disk.
    pub misses: u64,
    /// Pages dropped by LRU pressure to stay under capacity.
    pub evictions: u64,
}

/// One resident page plus its recency tick (key into `Inner::lru`).
struct Slot {
    data: Arc<Vec<u32>>,
    tick: u64,
}

/// The mutable pool state behind one mutex: the resident map and the
/// LRU order. Ticks are monotonically increasing and unique, so the
/// `BTreeMap` doubles as an O(log n) recency queue: the first entry is
/// always the least recently used page.
struct Inner {
    map: HashMap<PageKey, Slot>,
    lru: BTreeMap<u64, PageKey>,
    next_tick: u64,
}

/// A shared LRU cache of decoded code pages with a hard page-count
/// capacity.
///
/// `Send + Sync`: one pool serves every column of a paged backend,
/// including parallel workers. Loads happen *outside* the lock — two
/// threads missing the same page may both read it from disk, but the
/// pool stays responsive and the duplicate insert is benign (the
/// second loader adopts the first's entry).
pub struct BufferPool {
    capacity_pages: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity_pages", &self.capacity_pages)
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufferPool {
    /// A pool holding at most `pages` resident pages (floored at 1 —
    /// a zero-capacity pool would deadlock every probe into reloading
    /// the page it just evicted, so the floor keeps the degenerate
    /// configuration merely slow).
    pub fn with_capacity_pages(pages: usize) -> Self {
        BufferPool {
            capacity_pages: pages.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                next_tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A pool sized by bytes of page data (rounded down to whole
    /// pages of [`crate::pages::PAGE_BYTES`], floored at one page).
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        BufferPool::with_capacity_pages(bytes / crate::pages::PAGE_BYTES)
    }

    /// The page capacity this pool enforces.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.lock().map.len()
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> PageCacheStats {
        PageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The page under `key`, loading it with `load` on a miss. The
    /// loader runs outside the pool lock; its error propagates
    /// untouched and caches nothing.
    pub fn get_or_load<E>(
        &self,
        key: PageKey,
        load: impl FnOnce() -> Result<Vec<u32>, E>,
    ) -> Result<Arc<Vec<u32>>, E> {
        if let Some(hit) = self.get(key) {
            return Ok(hit);
        }
        let data = Arc::new(load()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(self.insert(key, data))
    }

    /// The page under `key` if resident, bumping its recency.
    fn get(&self, key: PageKey) -> Option<Arc<Vec<u32>>> {
        let mut inner = self.lock();
        let tick = inner.next_tick;
        inner.next_tick += 1;
        let slot = inner.map.get_mut(&key)?;
        let data = Arc::clone(&slot.data);
        let old = std::mem::replace(&mut slot.tick, tick);
        inner.lru.remove(&old);
        inner.lru.insert(tick, key);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(data)
    }

    /// Inserts a freshly loaded page, evicting LRU pages past
    /// capacity. If a concurrent loader already inserted `key`, its
    /// copy wins and ours is dropped (the pool never holds two slots
    /// for one key).
    fn insert(&self, key: PageKey, data: Arc<Vec<u32>>) -> Arc<Vec<u32>> {
        let mut inner = self.lock();
        if let Some(existing) = inner.map.get(&key) {
            return Arc::clone(&existing.data);
        }
        let tick = inner.next_tick;
        inner.next_tick += 1;
        inner.lru.insert(tick, key);
        inner.map.insert(
            key,
            Slot {
                data: Arc::clone(&data),
                tick,
            },
        );
        let mut evicted = 0u64;
        while inner.map.len() > self.capacity_pages {
            let Some((_, victim)) = inner.lru.pop_first() else {
                break;
            };
            inner.map.remove(&victim);
            evicted += 1;
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        data
    }

    /// Purges every resident page of `file` — the invalidation path
    /// when a table mutates and its spill file is replaced. Not
    /// counted as eviction: these pages can never be requested again.
    pub fn evict_file(&self, file: u64) {
        let mut inner = self.lock();
        let stale: Vec<(PageKey, u64)> = inner
            .map
            .iter()
            .filter(|(k, _)| k.file == file)
            .map(|(k, s)| (*k, s.tick))
            .collect();
        for (key, tick) in stale {
            inner.map.remove(&key);
            inner.lru.remove(&tick);
        }
    }

    /// The pool lock. Poisoning is recovered by *clearing* the pool —
    /// a panicking loader cannot leave torn entries behind (inserts
    /// are single `HashMap::insert` calls), but dropping the cache is
    /// free and removes any doubt; every page reloads from disk.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => {
                let mut g = poison.into_inner();
                g.map.clear();
                g.lru.clear();
                self.inner.clear_poison();
                g
            }
        }
    }
}

impl Default for BufferPool {
    /// The pool the paged backend uses when nothing is configured:
    /// 64 MiB of pages (the ceiling the out-of-core acceptance run
    /// caps itself at).
    fn default() -> Self {
        BufferPool::with_capacity_bytes(DEFAULT_CAPACITY_BYTES)
    }
}

/// Default pool capacity in bytes (64 MiB) — also the CLI default for
/// `--page-cache`.
pub const DEFAULT_CAPACITY_BYTES: usize = 64 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    fn key(file: u64, page: u32) -> PageKey {
        PageKey { file, page }
    }

    fn load(v: u32) -> Result<Vec<u32>, std::convert::Infallible> {
        Ok(vec![v])
    }

    #[test]
    fn hit_after_load_and_counters_track() {
        let pool = BufferPool::with_capacity_pages(4);
        let a = pool.get_or_load(key(1, 0), || load(7)).unwrap();
        assert_eq!(*a, vec![7]);
        let b = pool.get_or_load(key(1, 0), || load(99)).unwrap();
        assert_eq!(*b, vec![7], "second request must hit, not reload");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::with_capacity_pages(2);
        pool.get_or_load(key(1, 0), || load(0)).unwrap();
        pool.get_or_load(key(1, 1), || load(1)).unwrap();
        // Touch page 0 so page 1 is the LRU victim.
        pool.get_or_load(key(1, 0), || load(0)).unwrap();
        pool.get_or_load(key(1, 2), || load(2)).unwrap();
        assert_eq!(pool.resident_pages(), 2);
        // Page 1 must reload (miss); page 0 must still be resident.
        let before = pool.stats().misses;
        pool.get_or_load(key(1, 0), || load(0)).unwrap();
        assert_eq!(pool.stats().misses, before, "page 0 was resident");
        pool.get_or_load(key(1, 1), || load(1)).unwrap();
        assert_eq!(pool.stats().misses, before + 1, "page 1 was evicted");
        assert!(pool.stats().evictions >= 1);
    }

    #[test]
    fn capacity_one_still_serves() {
        let pool = BufferPool::with_capacity_pages(0); // floored to 1
        assert_eq!(pool.capacity_pages(), 1);
        for p in 0..8 {
            let got = pool.get_or_load(key(1, p), || load(p)).unwrap();
            assert_eq!(*got, vec![p]);
        }
        assert_eq!(pool.resident_pages(), 1);
        assert_eq!(pool.stats().evictions, 7);
    }

    #[test]
    fn evict_file_purges_only_that_file() {
        let pool = BufferPool::with_capacity_pages(8);
        pool.get_or_load(key(1, 0), || load(1)).unwrap();
        pool.get_or_load(key(2, 0), || load(2)).unwrap();
        pool.evict_file(1);
        assert_eq!(pool.resident_pages(), 1);
        let misses = pool.stats().misses;
        pool.get_or_load(key(2, 0), || load(2)).unwrap();
        assert_eq!(pool.stats().misses, misses, "file 2 untouched");
        pool.get_or_load(key(1, 0), || load(1)).unwrap();
        assert_eq!(pool.stats().misses, misses + 1, "file 1 purged");
    }

    #[test]
    fn scripted_access_pattern_pins_exact_counters() {
        // Every step of a fixed access script checks the *exact*
        // (hits, misses, evictions) triple, so any accounting drift —
        // double-counted misses, hits on reload, invalidation purges
        // leaking into `evictions` — fails here with the step name.
        let pool = BufferPool::with_capacity_pages(2);
        let expect = |step: &str, h: u64, m: u64, e: u64| {
            let s = pool.stats();
            assert_eq!(
                (s.hits, s.misses, s.evictions),
                (h, m, e),
                "after step `{step}`"
            );
        };

        pool.get_or_load(key(1, 0), || load(10)).unwrap();
        expect("cold load A", 0, 1, 0);
        pool.get_or_load(key(1, 1), || load(11)).unwrap();
        expect("cold load B", 0, 2, 0);
        pool.get_or_load(key(1, 0), || load(10)).unwrap();
        expect("re-read A", 1, 2, 0);
        // Pool is full (capacity 2); loading C evicts the LRU page B.
        pool.get_or_load(key(1, 2), || load(12)).unwrap();
        expect("load C evicts B", 1, 3, 1);
        pool.get_or_load(key(1, 1), || load(11)).unwrap();
        expect("reload B evicts A", 1, 4, 2);
        // A failing loader counts neither a miss nor an eviction.
        let r: Result<Arc<Vec<u32>>, &str> = pool.get_or_load(key(1, 3), || Err("io"));
        assert!(r.is_err());
        expect("failed load D", 1, 4, 2);
        // Invalidation purges are not evictions.
        pool.evict_file(1);
        assert_eq!(pool.resident_pages(), 0);
        expect("evict_file(1)", 1, 4, 2);
        // Purged pages reload as plain misses.
        pool.get_or_load(key(1, 2), || load(12)).unwrap();
        expect("reload C after purge", 1, 5, 2);
    }

    #[test]
    fn load_error_propagates_and_caches_nothing() {
        let pool = BufferPool::with_capacity_pages(2);
        let err: Result<Arc<Vec<u32>>, &str> = pool.get_or_load(key(1, 0), || Err("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert_eq!(pool.resident_pages(), 0);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }
}
