//! The chase: testing a decomposition for the lossless-join property
//! under a set of functional dependencies (Aho, Beeri & Ullman).
//!
//! Restruct splits relations along elicited FDs; a split `R(X)` into
//! `R₁ … Rₙ` is *lossless* iff the natural join of the projections
//! always reconstructs `R`. The chase decides this symbolically:
//! build a tableau with one row per fragment (distinguished symbols on
//! the fragment's attributes, unique symbols elsewhere), equate
//! symbols by applying the FDs to fixpoint, and accept iff some row
//! becomes all-distinguished.
//!
//! Used by tests to *prove* that every Restruct output and every
//! Bernstein synthesis is lossless, rather than spot-checking joins.

use crate::attr::{AttrId, AttrSet};
use crate::deps::Fd;

/// Symbolic tableau cell: `Distinguished` is the paper's `a_j`,
/// `Subscripted(i)` the `b_{ij}` unique to row `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sym {
    Distinguished,
    Subscripted(u32),
}

/// Decides whether decomposing `universe` into `fragments` is
/// lossless-join under `fds`.
///
/// Every fragment must be a subset of `universe`; FDs are interpreted
/// over `universe` attribute ids.
pub fn is_lossless_join(universe: &AttrSet, fragments: &[AttrSet], fds: &[Fd]) -> bool {
    let attrs: Vec<AttrId> = universe.iter().collect();
    let col_of = |a: AttrId| -> usize {
        // Callers pass fragments/FDs projected from `universe`, so the
        // position lookup cannot miss; a violation is a caller bug.
        #[allow(clippy::expect_used)]
        attrs
            .iter()
            .position(|x| *x == a)
            .expect("fragment/FD attributes must be within the universe")
    };

    // Initial tableau.
    let mut tableau: Vec<Vec<Sym>> = Vec::with_capacity(fragments.len());
    let mut fresh = 0u32;
    for frag in fragments {
        let mut row = Vec::with_capacity(attrs.len());
        for &a in &attrs {
            if frag.contains(a) {
                row.push(Sym::Distinguished);
            } else {
                row.push(Sym::Subscripted(fresh));
                fresh += 1;
            }
        }
        tableau.push(row);
    }

    // Chase to fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            let lhs_cols: Vec<usize> = fd.lhs.iter().map(col_of).collect();
            let rhs_cols: Vec<usize> = fd.rhs.iter().map(col_of).collect();
            for i in 0..tableau.len() {
                for j in i + 1..tableau.len() {
                    if lhs_cols.iter().any(|&c| tableau[i][c] != tableau[j][c]) {
                        continue;
                    }
                    // Rows agree on the LHS: equate the RHS symbols.
                    for &c in &rhs_cols {
                        let (a, b) = (tableau[i][c], tableau[j][c]);
                        if a == b {
                            continue;
                        }
                        // Prefer the distinguished symbol; otherwise
                        // collapse onto the smaller subscript.
                        let target = match (a, b) {
                            (Sym::Distinguished, _) | (_, Sym::Distinguished) => Sym::Distinguished,
                            (Sym::Subscripted(x), Sym::Subscripted(y)) => {
                                Sym::Subscripted(x.min(y))
                            }
                        };
                        for row in tableau.iter_mut() {
                            for cell in row.iter_mut() {
                                if *cell == a || *cell == b {
                                    *cell = target;
                                }
                            }
                        }
                        changed = true;
                    }
                }
            }
        }
    }

    tableau
        .iter()
        .any(|row| row.iter().all(|s| *s == Sym::Distinguished))
}

/// Convenience for the common binary split: is `R = R₁ ⋈ R₂` lossless?
/// (Equivalent to the classical test: `R₁ ∩ R₂ → R₁` or
/// `R₁ ∩ R₂ → R₂` in the closure.)
pub fn is_lossless_binary(universe: &AttrSet, left: &AttrSet, right: &AttrSet, fds: &[Fd]) -> bool {
    is_lossless_join(universe, &[left.clone(), right.clone()], fds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;

    const R: RelId = RelId(0);

    fn s(ids: &[u16]) -> AttrSet {
        AttrSet::from_indices(ids.iter().copied())
    }

    fn fd(lhs: &[u16], rhs: &[u16]) -> Fd {
        Fd::new(R, s(lhs), s(rhs))
    }

    #[test]
    fn textbook_lossless_split() {
        // R(a,b,c), a->b: {ab, ac} is lossless.
        let fds = vec![fd(&[0], &[1])];
        assert!(is_lossless_binary(
            &s(&[0, 1, 2]),
            &s(&[0, 1]),
            &s(&[0, 2]),
            &fds
        ));
    }

    #[test]
    fn textbook_lossy_split() {
        // R(a,b,c), a->b: {ab, bc} is lossy (b is not a key of either
        // side's intersection-determined part).
        let fds = vec![fd(&[0], &[1])];
        assert!(!is_lossless_binary(
            &s(&[0, 1, 2]),
            &s(&[0, 1]),
            &s(&[1, 2]),
            &fds
        ));
        // With b->c it becomes lossless.
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2])];
        assert!(is_lossless_binary(
            &s(&[0, 1, 2]),
            &s(&[0, 1]),
            &s(&[1, 2]),
            &fds
        ));
    }

    #[test]
    fn no_fds_means_lossy_unless_covering_fragment() {
        assert!(!is_lossless_binary(
            &s(&[0, 1, 2]),
            &s(&[0, 1]),
            &s(&[1, 2]),
            &[]
        ));
        // A fragment equal to the universe is trivially lossless.
        assert!(is_lossless_join(&s(&[0, 1]), &[s(&[0, 1]), s(&[0])], &[]));
    }

    #[test]
    fn ternary_chase_needs_transitive_steps() {
        // R(a,b,c,d), a->b, b->c, c->d: {ab, bc, cd} is lossless but
        // requires chasing through intermediate rows.
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2]), fd(&[2], &[3])];
        assert!(is_lossless_join(
            &s(&[0, 1, 2, 3]),
            &[s(&[0, 1]), s(&[1, 2]), s(&[2, 3])],
            &fds
        ));
        // Remove the middle FD: lossy.
        let fds = vec![fd(&[0], &[1]), fd(&[2], &[3])];
        assert!(!is_lossless_join(
            &s(&[0, 1, 2, 3]),
            &[s(&[0, 1]), s(&[1, 2]), s(&[2, 3])],
            &fds
        ));
    }

    #[test]
    fn restruct_style_split_is_lossless() {
        // Department(dep, emp, skill, location, proj), emp -> skill proj
        // split into Department'(dep, emp, location) + Manager(emp,
        // skill, proj): lossless given dep -> all and emp -> skill proj.
        let universe = s(&[0, 1, 2, 3, 4]);
        let fds = vec![fd(&[0], &[1, 2, 3, 4]), fd(&[1], &[2, 4])];
        assert!(is_lossless_binary(
            &universe,
            &s(&[0, 1, 3]),
            &s(&[1, 2, 4]),
            &fds
        ));
    }

    #[test]
    fn bernstein_synthesis_outputs_are_lossless() {
        use crate::synthesis::synthesize_3nf;
        let universe = s(&[0, 1, 2, 3]);
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2, 3])];
        let schemes = synthesize_3nf(R, &universe, &fds);
        let fragments: Vec<AttrSet> = schemes.into_iter().map(|x| x.attrs).collect();
        assert!(is_lossless_join(&universe, &fragments, &fds));
    }
}
