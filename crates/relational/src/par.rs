//! Order-preserving parallel mapping over independent work units.
//!
//! With the `parallel` cargo feature off (the default), [`par_map`] is
//! a plain sequential map, so results are trivially deterministic. With
//! the feature on, items are split into contiguous chunks across OS
//! threads (`std::thread::scope` — the container has no rayon) and
//! results are written back *by position*, so the output order is
//! byte-identical to the sequential run. Anything order-sensitive —
//! oracle interaction in IND-Discovery, log emission — must therefore
//! stay outside the mapped closure.

/// Maps `f` over `items`, preserving input order in the output.
///
/// The closure must be free of side effects that observe ordering:
/// with `--features parallel` invocations run concurrently (though
/// results are still returned in input order).
#[cfg(not(feature = "parallel"))]
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    F: Fn(&T) -> R,
{
    items.iter().map(f).collect()
}

/// Maps `f` over `items` on a scoped thread pool, preserving input
/// order in the output.
#[cfg(feature = "parallel")]
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (item_chunk, result_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in item_chunk.iter().zip(result_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    // `chunks`/`chunks_mut` with the same chunk size pair every item
    // with exactly one slot, and `scope` joins all threads before this
    // line runs, so every slot has been written.
    #[allow(clippy::expect_used)]
    results
        .into_iter()
        .map(|r| r.expect("every chunk slot is filled by its thread"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::par_map;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(&empty, |&x: &usize| x).is_empty());
        assert_eq!(par_map(&[9usize], |&x| x + 1), vec![10]);
    }
}
