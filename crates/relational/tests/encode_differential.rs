//! Differential proptests: the dictionary-encoded kernels of
//! [`dbre_relational::encode`] must agree *exactly* with the Value-based
//! reference implementations in `table.rs` / `partitions.rs` /
//! `counting.rs` — on every generated table, including NULL-heavy and
//! NaN-bearing columns, under both NULL conventions (SQL skip-NULL for
//! counts / FD checks / LHS groups, NULL = NULL for partitions).
//!
//! The same file gates the default and `parallel` builds (CI runs both
//! feature sets), so the encoded path is pinned to the reference
//! byte-for-byte regardless of how the engine schedules work.

// Test-support helpers outside #[test] fns; panicking on fixture
// failure is test behaviour.
#![allow(clippy::expect_used)]

use std::collections::{HashMap, HashSet};

use dbre_relational::attr::AttrId;
use dbre_relational::backend::{EncodedBackend, ReferenceBackend};
use dbre_relational::counting::{join_stats, EquiJoin};
use dbre_relational::database::Database;
use dbre_relational::deps::IndSide;
use dbre_relational::encode::{join_stats_encoded, DictTable};
use dbre_relational::partitions::StrippedPartition;
use dbre_relational::schema::Relation;
use dbre_relational::stats::StatsEngine;
use dbre_relational::table::Table;
use dbre_relational::value::{Domain, Value};
use proptest::prelude::*;

// ---- generators -----------------------------------------------------

/// A small value pool engineered for collisions: repeated ints and
/// strings, NULLs, and a NaN (which must intern to a single code via
/// the total-order bit key, i.e. NaN = NaN for grouping). Entries are
/// repeated to bias the draw (the vendored `prop_oneof!` is uniform).
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..4).prop_map(Value::Int),
        (0i64..4).prop_map(Value::Int),
        (0i64..4).prop_map(Value::Int),
        Just(Value::Null),
        Just(Value::Null),
        Just(Value::str("a")),
        Just(Value::str("b")),
        Just(Value::float(f64::NAN)),
        Just(Value::float(0.5)),
        Just(Value::float(-0.0)),
    ]
}

/// Raw rows at the maximum arity; callers truncate to the drawn arity.
fn raw_rows(max_arity: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    prop::collection::vec(prop::collection::vec(value(), max_arity), 0..40)
}

fn make_table(arity: usize, rows: Vec<Vec<Value>>) -> Table {
    let rows = rows.into_iter().map(|mut r| {
        r.truncate(arity);
        r
    });
    Table::from_rows(arity, rows).expect("rows match arity")
}

/// `(table, attrs)` where `attrs` indexes the table's columns —
/// possibly empty, possibly with repeats (projection lists from query
/// text can repeat a column).
fn table_and_attrs() -> impl Strategy<Value = (Table, Vec<AttrId>)> {
    (1usize..5, raw_rows(4), prop::collection::vec(0u16..4, 0..4)).prop_map(
        |(arity, rows, attrs)| {
            let attrs = attrs
                .into_iter()
                .map(|i| AttrId(i % arity as u16))
                .collect();
            (make_table(arity, rows), attrs)
        },
    )
}

/// Two tables plus equal-arity attribute lists for a cross-table join.
#[allow(clippy::type_complexity)]
fn join_case() -> impl Strategy<Value = (Table, Vec<AttrId>, Table, Vec<AttrId>)> {
    (
        1usize..4,
        1usize..4,
        raw_rows(3),
        raw_rows(3),
        prop::collection::vec((0u16..3, 0u16..3), 1..3),
    )
        .prop_map(|(la, ra, lrows, rrows, pairs)| {
            let lattrs = pairs.iter().map(|&(l, _)| AttrId(l % la as u16)).collect();
            let rattrs = pairs.iter().map(|&(_, r)| AttrId(r % ra as u16)).collect();
            (make_table(la, lrows), lattrs, make_table(ra, rrows), rattrs)
        })
}

/// Wraps a table in a single-relation database (`add_relation_with_table`
/// skips domain validation, so mixed-type proptest columns are fine).
fn db_of(t: &Table) -> (Database, dbre_relational::schema::RelId) {
    let mut db = Database::new();
    let cols: Vec<(String, Domain)> = (0..t.arity())
        .map(|i| (format!("c{i}"), Domain::Int))
        .collect();
    let named: Vec<(&str, Domain)> = cols.iter().map(|(n, d)| (n.as_str(), *d)).collect();
    let rel = db
        .add_relation_with_table(Relation::of("T", &named), t.clone())
        .expect("arity matches");
    (db, rel)
}

// ---- Value-based naive references (independent of encode.rs) --------

/// SQL-convention FD check: rows with a NULL among the LHS are skipped;
/// surviving LHS groups must agree structurally on the RHS projection
/// (structural equality: Null = Null, NaN = NaN by bit key).
fn naive_fd_holds(t: &Table, lhs: &[AttrId], rhs: &[AttrId]) -> bool {
    let mut first: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
    for i in 0..t.len() {
        let key = t.project_row(i, lhs);
        if key.iter().any(Value::is_null) {
            continue;
        }
        let val = t.project_row(i, rhs);
        match first.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != val {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(val);
            }
        }
    }
    true
}

/// SQL-convention LHS groups: row-index groups of size ≥ 2 agreeing on
/// `attrs`, NULL-bearing rows skipped, groups ascending and sorted.
fn naive_lhs_groups(t: &Table, attrs: &[AttrId]) -> Vec<Vec<usize>> {
    let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for i in 0..t.len() {
        let key = t.project_row(i, attrs);
        if !attrs.is_empty() && key.iter().any(Value::is_null) {
            continue;
        }
        map.entry(key).or_default().push(i);
    }
    let mut groups: Vec<Vec<usize>> = map.into_values().filter(|g| g.len() >= 2).collect();
    groups.sort();
    groups
}

// ---- properties -----------------------------------------------------

proptest! {
    /// `‖π_attrs‖`: encoded count = reference count (SQL skip-NULL).
    #[test]
    fn counts_agree(case in table_and_attrs()) {
        let (t, attrs) = case;
        let d = DictTable::build(&t);
        prop_assert_eq!(d.count_distinct(&attrs), t.count_distinct(&attrs));
    }

    /// Decoding the encoded distinct set recovers the reference
    /// projection exactly (same tuples, not just the same count).
    #[test]
    fn distinct_sets_agree(case in table_and_attrs()) {
        let (t, attrs) = case;
        let d = DictTable::build(&t);
        let encoded: HashSet<_> = d.decode_set(&attrs, &d.distinct_codes(&attrs));
        prop_assert_eq!(encoded, t.distinct_projection(&attrs));
    }

    /// Stripped partitions (NULL = NULL convention) are byte-identical
    /// to the Value-based constructors, unary and multi-attribute.
    #[test]
    fn partitions_agree(case in table_and_attrs()) {
        let (t, attrs) = case;
        let d = DictTable::build(&t);
        if let [a] = attrs.as_slice() {
            prop_assert_eq!(d.partition1(*a), StrippedPartition::for_attribute(&t, *a));
        }
        prop_assert_eq!(d.partition(&attrs), StrippedPartition::for_attrs(&t, &attrs));
    }

    /// FD checks (SQL convention) match an independent naive oracle.
    #[test]
    fn fd_holds_agrees(
        case in table_and_attrs(),
        rhs_seed in prop::collection::vec(0u16..4, 1..3),
    ) {
        let (t, lhs) = case;
        let rhs: Vec<AttrId> = rhs_seed
            .into_iter()
            .map(|i| AttrId(i % t.arity() as u16))
            .collect();
        let d = DictTable::build(&t);
        prop_assert_eq!(d.fd_holds(&lhs, &rhs), naive_fd_holds(&t, &lhs, &rhs));
    }

    /// LHS groups (SQL convention) match the naive oracle exactly,
    /// including group membership and ordering.
    #[test]
    fn lhs_groups_agree(case in table_and_attrs()) {
        let (t, attrs) = case;
        let d = DictTable::build(&t);
        prop_assert_eq!(d.lhs_groups(&attrs), naive_lhs_groups(&t, &attrs));
    }

    /// Cross-table join stats: code translation gives the same three
    /// cardinalities as the Value-based set intersection.
    #[test]
    fn join_stats_agree(case in join_case()) {
        let (lt, lattrs, rt, rattrs) = case;
        let (ld, rd) = (DictTable::build(&lt), DictTable::build(&rt));
        let encoded = join_stats_encoded(&ld, &lattrs, &rd, &rattrs);

        let mut db = Database::new();
        let mk = |n: usize| -> Vec<(String, Domain)> {
            (0..n).map(|i| (format!("c{i}"), Domain::Int)).collect()
        };
        let lcols = mk(lt.arity());
        let rcols = mk(rt.arity());
        let l = db
            .add_relation_with_table(
                Relation::of("L", &lcols.iter().map(|(n, d)| (n.as_str(), *d)).collect::<Vec<_>>()),
                lt,
            )
            .expect("arity matches");
        let r = db
            .add_relation_with_table(
                Relation::of("R", &rcols.iter().map(|(n, d)| (n.as_str(), *d)).collect::<Vec<_>>()),
                rt,
            )
            .expect("arity matches");
        let join = EquiJoin::try_new(IndSide::new(l, lattrs), IndSide::new(r, rattrs))
            .expect("equal arity by construction");
        prop_assert_eq!(encoded, join_stats(&db, &join));
    }

    /// The memoizing engine agrees with the references through its
    /// public API over *every in-crate backend* (reference scans and
    /// the dictionary-encoded kernels; the SQL backend joins the
    /// matrix in `dbre-sql`'s `backend_differential`) — covering the
    /// generation-tagged caches and, under `--features parallel`, the
    /// shared read-only dictionary access from worker threads.
    #[test]
    fn engine_agrees_with_references(
        case in table_and_attrs(),
        rhs_seed in prop::collection::vec(0u16..4, 1..3),
    ) {
        let (t, attrs) = case;
        let rhs: Vec<AttrId> = rhs_seed
            .into_iter()
            .map(|i| AttrId(i % t.arity() as u16))
            .collect();
        let (db, rel) = db_of(&t);
        let engines = [
            StatsEngine::with_backend(Box::new(ReferenceBackend)),
            StatsEngine::with_backend(Box::new(EncodedBackend::new())),
        ];
        for engine in engines {
            // Twice: miss path, then hit path, must both agree.
            for _ in 0..2 {
                prop_assert_eq!(
                    engine.count_distinct(&db, rel, &attrs),
                    t.count_distinct(&attrs),
                    "backend {}", engine.backend_name()
                );
                prop_assert_eq!(
                    (*engine.partition_for_attrs(&db, rel, &attrs)).clone(),
                    StrippedPartition::for_attrs(&t, &attrs),
                    "backend {}", engine.backend_name()
                );
                prop_assert_eq!(
                    (*engine.lhs_groups(&db, rel, &attrs)).clone(),
                    naive_lhs_groups(&t, &attrs),
                    "backend {}", engine.backend_name()
                );
                if !attrs.is_empty() {
                    let fd = dbre_relational::deps::Fd {
                        rel,
                        lhs: attrs.iter().copied().collect(),
                        rhs: rhs.iter().copied().collect(),
                    };
                    prop_assert_eq!(
                        engine.fd_holds(&db, &fd),
                        naive_fd_holds(&t, &attrs, &rhs),
                        "backend {}", engine.backend_name()
                    );
                }
            }
        }
    }
}
