//! Property-based tests for the relational substrate:
//! AttrSet algebra laws, FD-theory laws, table counting invariants.

use dbre_relational::attr::{AttrId, AttrSet};
use dbre_relational::deps::Fd;
use dbre_relational::fd_theory::{
    candidate_keys, closure, equivalent, implies, is_superkey, minimal_cover,
};
use dbre_relational::schema::RelId;
use dbre_relational::synthesis::synthesize_3nf;
use dbre_relational::table::Table;
use dbre_relational::value::Value;
use proptest::prelude::*;

const R: RelId = RelId(0);

fn attr_set(max_attr: u16) -> impl Strategy<Value = AttrSet> {
    prop::collection::vec(0..max_attr, 0..6).prop_map(AttrSet::from_indices)
}

fn nonempty_attr_set(max_attr: u16) -> impl Strategy<Value = AttrSet> {
    prop::collection::vec(0..max_attr, 1..5).prop_map(AttrSet::from_indices)
}

fn fd_strategy(max_attr: u16) -> impl Strategy<Value = Fd> {
    (nonempty_attr_set(max_attr), nonempty_attr_set(max_attr))
        .prop_map(|(lhs, rhs)| Fd::new(R, lhs, rhs))
}

fn fd_set(max_attr: u16) -> impl Strategy<Value = Vec<Fd>> {
    prop::collection::vec(fd_strategy(max_attr), 0..8)
}

proptest! {
    // ---- AttrSet algebra ----

    #[test]
    fn union_is_commutative(a in attr_set(12), b in attr_set(12)) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn union_is_associative(a in attr_set(12), b in attr_set(12), c in attr_set(12)) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn intersection_distributes_over_union(
        a in attr_set(10), b in attr_set(10), c in attr_set(10)
    ) {
        prop_assert_eq!(
            a.intersection(&b.union(&c)),
            a.intersection(&b).union(&a.intersection(&c))
        );
    }

    #[test]
    fn difference_then_union_restores_subset(a in attr_set(12), b in attr_set(12)) {
        let diff = a.difference(&b);
        prop_assert!(diff.is_disjoint(&b));
        prop_assert_eq!(diff.union(&a.intersection(&b)), a.clone());
    }

    #[test]
    fn subset_iff_union_absorbs(a in attr_set(12), b in attr_set(12)) {
        prop_assert_eq!(a.is_subset(&b), a.union(&b) == b);
    }

    #[test]
    fn insert_remove_roundtrip(a in attr_set(12), x in 0u16..12) {
        let mut s = a.clone();
        let present = s.contains(AttrId(x));
        s.insert(AttrId(x));
        prop_assert!(s.contains(AttrId(x)));
        s.remove(AttrId(x));
        prop_assert!(!s.contains(AttrId(x)));
        if !present {
            prop_assert_eq!(s, a);
        }
    }

    // ---- FD theory laws ----

    #[test]
    fn closure_is_extensive_and_monotone(x in attr_set(8), fds in fd_set(8)) {
        let cx = closure(&x, &fds);
        prop_assert!(x.is_subset(&cx), "closure must contain its argument");
        // Idempotence.
        prop_assert_eq!(closure(&cx, &fds), cx.clone());
        // Monotonicity: x ⊆ y ⇒ cl(x) ⊆ cl(y).
        let y = x.union(&AttrSet::from_indices([0u16]));
        prop_assert!(cx.is_subset(&closure(&y, &fds)));
    }

    #[test]
    fn minimal_cover_is_equivalent(fds in fd_set(6)) {
        let cover = minimal_cover(&fds);
        prop_assert!(equivalent(&cover, &fds));
        // All RHS are singletons and nontrivial.
        for fd in &cover {
            prop_assert_eq!(fd.rhs.len(), 1);
            prop_assert!(!fd.is_trivial());
        }
    }

    #[test]
    fn minimal_cover_has_no_redundant_fd(fds in fd_set(5)) {
        let cover = minimal_cover(&fds);
        for i in 0..cover.len() {
            let mut rest = cover.clone();
            let removed = rest.remove(i);
            prop_assert!(
                !implies(&rest, &removed),
                "cover kept a redundant FD: {:?}",
                removed
            );
        }
    }

    #[test]
    fn candidate_keys_are_superkeys_and_minimal(fds in fd_set(5)) {
        let universe = AttrSet::from_indices(0u16..5);
        let keys = candidate_keys(R, &universe, &fds);
        prop_assert!(!keys.is_empty());
        for key in &keys {
            prop_assert!(is_superkey(key, &universe, &fds));
            // Minimality: removing any attribute breaks superkey-ness.
            for a in key.iter() {
                let mut smaller = key.clone();
                smaller.remove(a);
                prop_assert!(
                    !is_superkey(&smaller, &universe, &fds),
                    "key {:?} not minimal",
                    key
                );
            }
        }
        // Pairwise incomparable.
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subset(b));
                }
            }
        }
    }

    #[test]
    fn synthesis_covers_universe(fds in fd_set(5)) {
        let universe = AttrSet::from_indices(0u16..5);
        let schemes = synthesize_3nf(R, &universe, &fds);
        let covered = schemes
            .iter()
            .fold(AttrSet::empty(), |acc, s| acc.union(&s.attrs));
        prop_assert_eq!(covered, universe.clone());
        // Some scheme contains a global candidate key (lossless-join).
        let keys = candidate_keys(R, &universe, &fds);
        prop_assert!(schemes
            .iter()
            .any(|s| keys.iter().any(|k| k.is_subset(&s.attrs))));
    }

    // ---- IND inference laws ----

    #[test]
    fn ind_transitive_closure_is_sound_and_idempotent(
        edges in prop::collection::vec((0u32..4, 0u16..3, 0u32..4, 0u16..3), 0..8)
    ) {
        use dbre_relational::deps::Ind;
        use dbre_relational::ind_theory::{implies, minimal_cover, transitive_closure};
        use dbre_relational::schema::RelId;

        let inds: Vec<Ind> = edges
            .iter()
            .map(|(lr, la, rr, ra)| {
                Ind::unary(RelId(*lr), AttrId(*la), RelId(*rr), AttrId(*ra))
            })
            .collect();
        let closed = transitive_closure(&inds);
        // Idempotent.
        let twice = transitive_closure(&closed);
        prop_assert_eq!(&closed.len(), &twice.len());
        // Sound: every closed IND is implied by the original set.
        for ind in &closed {
            prop_assert!(implies(&inds, ind), "unsound closure member {ind}");
        }
        // The minimal cover still implies everything.
        let cover = minimal_cover(&inds);
        prop_assert!(cover.len() <= inds.len());
        for ind in &inds {
            prop_assert!(implies(&cover, ind), "cover lost {ind}");
        }
    }

    #[test]
    fn ind_cycles_mean_mutual_inclusion(
        edges in prop::collection::vec((0u32..4, 0u32..4), 1..8)
    ) {
        use dbre_relational::deps::Ind;
        use dbre_relational::ind_theory::{find_cycles, mutually_included};
        use dbre_relational::schema::RelId;

        // One shared attribute position per relation keeps the
        // composition middle-matching exact.
        let inds: Vec<Ind> = edges
            .iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Ind::unary(RelId(*a), AttrId(0), RelId(*b), AttrId(0)))
            .collect();
        for cycle in find_cycles(&inds) {
            for w in cycle.relations.windows(2) {
                prop_assert!(mutually_included(&inds, w[0], w[1]));
            }
            if let (Some(&first), Some(&last)) =
                (cycle.relations.first(), cycle.relations.last())
            {
                prop_assert!(mutually_included(&inds, first, last));
            }
        }
    }

    // ---- Decomposition laws ----

    #[test]
    fn synthesis_is_lossless_by_the_chase(fds in fd_set(5)) {
        use dbre_relational::chase::is_lossless_join;
        use dbre_relational::synthesis::synthesize_3nf;
        let universe = AttrSet::from_indices(0u16..5);
        let schemes = synthesize_3nf(R, &universe, &fds);
        let fragments: Vec<AttrSet> = schemes.into_iter().map(|s| s.attrs).collect();
        prop_assert!(
            is_lossless_join(&universe, &fragments, &fds),
            "Bernstein synthesis must be lossless-join"
        );
    }

    // ---- Table counting invariants ----

    #[test]
    fn count_distinct_bounded_by_rows(
        rows in prop::collection::vec((0i64..6, 0i64..6), 0..40)
    ) {
        let table = Table::from_rows(
            2,
            rows.iter().map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)]),
        )
        .unwrap();
        let both = table.count_distinct(&[AttrId(0), AttrId(1)]);
        let first = table.count_distinct(&[AttrId(0)]);
        prop_assert!(both <= rows.len());
        prop_assert!(first <= both || rows.is_empty());
        // Projection on more attributes refines: distinct pairs >= distinct firsts.
        prop_assert!(first <= both);
    }

    #[test]
    fn distinct_subtable_matches_count(
        rows in prop::collection::vec(0i64..10, 0..50)
    ) {
        let table =
            Table::from_rows(1, rows.iter().map(|a| vec![Value::Int(*a)])).unwrap();
        let sub = table.distinct_subtable(&[AttrId(0)]);
        prop_assert_eq!(sub.len(), table.count_distinct(&[AttrId(0)]));
    }
}
