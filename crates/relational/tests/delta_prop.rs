//! Randomized differential test for incremental cache maintenance:
//! one engine carried across an arbitrary sequence of append/delete
//! deltas (the [`SharedDb::apply`] write path) must answer every
//! statistics query exactly like a cold engine recomputing from
//! scratch on the resulting database version — same counts, same
//! projections, same class and group orderings.

use dbre_relational::attr::AttrId;
use dbre_relational::schema::Relation;
use dbre_relational::value::{Domain, Value};
use dbre_relational::{Database, Delta, SharedDb, StatsEngine};
use proptest::prelude::*;

const ARITY: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    Append(Vec<Vec<Value>>),
    /// Raw indices, reduced mod the live row count at apply time.
    Delete(Vec<usize>),
}

/// Small domain plus NULLs: duplicates (partition classes), NULL
/// groups (SQL-vs-mining divergence) and singleton promotions all
/// occur constantly.
fn cell() -> impl Strategy<Value = Value> {
    (0i64..4).prop_map(|v| if v == 3 { Value::Null } else { Value::Int(v) })
}

fn row() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(cell(), ARITY)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(row(), 1..4).prop_map(Op::Append),
        prop::collection::vec(any::<usize>(), 1..4).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn maintained_caches_equal_cold_recompute(
        init in prop::collection::vec(row(), 0..10),
        ops in prop::collection::vec(op(), 1..8),
    ) {
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of(
                "T",
                &[("a", Domain::Int), ("b", Domain::Int), ("c", Domain::Int)],
            ))
            .unwrap();
        for r in init {
            db.insert(rel, r).unwrap();
        }
        let engine = StatsEngine::new();
        let shared = SharedDb::new(db);
        let queries: &[&[AttrId]] = &[
            &[AttrId(0)],
            &[AttrId(1)],
            &[AttrId(0), AttrId(2)],
            &[AttrId(0), AttrId(1), AttrId(2)],
        ];
        for op in ops {
            // Warm every cache family on the current version so
            // maintenance has entries to carry across the delta.
            let snap = shared.snapshot();
            for q in queries {
                engine.count_distinct(&snap, rel, q);
                engine.projection(&snap, rel, q);
                engine.partition_for_attrs(&snap, rel, q);
                engine.lhs_groups(&snap, rel, q);
            }
            let delta = match op {
                Op::Append(rows) => Delta::Append { rel, rows },
                Op::Delete(raw) => {
                    let len = snap.table(rel).len();
                    if len == 0 {
                        continue;
                    }
                    let mut rows: Vec<usize> = raw.iter().map(|i| i % len).collect();
                    rows.sort_unstable();
                    rows.dedup();
                    Delta::Delete { rel, rows }
                }
            };
            let snap = shared.apply(&delta, &[&engine]).unwrap();
            // Every maintained answer must equal a cold recompute on
            // the new version, ordering included.
            let cold = StatsEngine::new();
            for q in queries {
                prop_assert_eq!(
                    engine.count_distinct(&snap, rel, q),
                    cold.count_distinct(&snap, rel, q)
                );
                prop_assert_eq!(
                    &*engine.projection(&snap, rel, q),
                    &*cold.projection(&snap, rel, q)
                );
                prop_assert_eq!(
                    &*engine.partition_for_attrs(&snap, rel, q),
                    &*cold.partition_for_attrs(&snap, rel, q)
                );
                prop_assert_eq!(
                    &*engine.lhs_groups(&snap, rel, q),
                    &*cold.lhs_groups(&snap, rel, q)
                );
            }
        }
    }
}
