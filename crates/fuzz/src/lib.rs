//! Seeded fault injectors for the panic-freedom harness.
//!
//! Everything here is deterministic in a `u64` seed (SplitMix64, the
//! same generator the vendored proptest shim uses), so any failing
//! case reported by the property tests can be replayed exactly by
//! feeding the printed seed back into these constructors. The
//! injectors produce the three classes of hostile input the pipeline
//! must survive:
//!
//! * **corrupted CSV** — BOMs, duplicate headers, ragged rows, stray
//!   quotes, values that do not fit the declared domain;
//! * **truncated / spliced SQL programs** — scripts cut at an
//!   arbitrary character boundary, optionally with garbage appended;
//! * **out-of-range `Q`** — equi-joins referencing relations and
//!   attributes that do not exist, with mismatched side arities and
//!   empty attribute lists, built as raw struct literals so they skip
//!   every checked constructor.
//!
//! The oracle side of fault injection lives in
//! [`dbre_core::ChaosOracle`].

use dbre_relational::attr::AttrId;
use dbre_relational::counting::EquiJoin;
use dbre_relational::database::Database;
use dbre_relational::deps::IndSide;
use dbre_relational::schema::RelId;

/// SplitMix64 — small, seedable, good enough for fault injection.
#[derive(Debug, Clone)]
pub struct Splitmix(pub u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

/// A well-formed base script the SQL corruptor mutilates: two related
/// tables with keys, a denormalized copy attribute and a few rows.
pub const BASE_SCRIPT: &str = "\
CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30), zip INT);
CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30), amount INT);
INSERT INTO Customer VALUES (1, 'ann', 10), (2, 'bob', 20), (3, 'cyd', 10);
INSERT INTO Orders VALUES (10, 1, 'ann', 5), (11, 1, 'ann', 7), (12, 2, 'bob', 3);
";

/// A well-formed application program for `Q` extraction.
pub const BASE_PROGRAM: &str = "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;";

/// Truncates `script` at a seed-chosen char boundary and, with some
/// probability, splices garbage where the cut happened.
pub fn truncate_sql(seed: u64, script: &str) -> String {
    let mut rng = Splitmix(seed);
    let cut_chars = rng.below(script.chars().count() as u64 + 1) as usize;
    let mut out: String = script.chars().take(cut_chars).collect();
    if rng.chance(3) {
        let garbage = [
            "SELEC",
            "'unterminated",
            "((((",
            "FROM FROM",
            "\u{1F4A5}",
            ";;;",
        ];
        out.push_str(garbage[rng.below(garbage.len() as u64) as usize]);
    }
    out
}

/// Produces a corrupted CSV text for a 4-column relation
/// (`id INT, name TEXT, when DATE, score FLOAT`), with seed-chosen
/// faults: a leading BOM (benign), duplicated or unknown header
/// columns, ragged or over-long rows, stray quotes and ill-typed
/// values.
pub fn corrupt_csv(seed: u64) -> String {
    let mut rng = Splitmix(seed);
    let mut out = String::new();
    if rng.chance(3) {
        out.push('\u{feff}');
    }
    // Header: shuffle in faults.
    let header: &[&str] = match rng.below(5) {
        0 => &["id", "id", "when", "score"],         // duplicate
        1 => &["id", "name", "ghost", "score"],      // unknown column
        2 => &["id", "name", "when"],                // missing column
        3 => &["id", "name", "when", "score", "id"], // extra + duplicate
        _ => &["id", "name", "when", "score"],       // well-formed
    };
    out.push_str(&header.join(","));
    out.push('\n');
    let rows = rng.below(6);
    for _ in 0..rows {
        let row: String = match rng.below(6) {
            0 => "1,alice,1990-01-02,2.5".into(),          // fine
            1 => "2,bob".into(),                           // ragged
            2 => "3,eve,1990-01-02,2.5,extra".into(),      // over-long
            3 => "not-an-int,x,також-не-дата,nan?".into(), // ill-typed
            4 => "4,\"unterminated,1990-01-02,0.5".into(), // bad quote
            _ => format!("{},t\"t,,", rng.below(100)),     // stray quote
        };
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Produces a *well-formed* but hostile CSV text for the same
/// 4-column relation as [`corrupt_csv`] (`id INT, name TEXT,
/// when DATE, score FLOAT`): every row parses, but the text leans on
/// the cases a streaming parser is most likely to fumble — an
/// optional BOM, CRLF and LF line endings mixed per row, NULL-heavy
/// columns (empty fields), quoted fields holding commas, escaped
/// quotes, line breaks and multi-byte unicode. Differential tests
/// feed this to both CSV ingest paths and demand identical output.
pub fn streaming_csv(seed: u64) -> String {
    let mut rng = Splitmix(seed ^ 0x5EED_CAFE);
    let mut out = String::new();
    if rng.chance(3) {
        out.push('\u{feff}');
    }
    out.push_str("id,\"name\",when,score\n");
    let rows = rng.below(120);
    for _ in 0..rows {
        let id = match rng.below(4) {
            0 => String::new(), // NULL-heavy
            _ => format!("{}", rng.below(50)),
        };
        let name = match rng.below(8) {
            0 => String::new(),
            1 => "\"comma, inside\"".into(),
            2 => "\"escaped \"\" quote\"".into(),
            3 => "\"line\nbreak\"".into(),
            4 => "багатобайтовий-😀".into(),
            5 => format!("\"{}\"", "x".repeat(rng.below(40) as usize)),
            6 => " padded ".into(),
            _ => format!("n{}", rng.below(1000)),
        };
        let when = match rng.below(3) {
            0 => String::new(),
            _ => format!(
                "19{:02}-{:02}-{:02}",
                rng.below(100),
                rng.below(12) + 1,
                rng.below(28) + 1
            ),
        };
        let score = match rng.below(5) {
            0 => String::new(),
            1 => "-0.0".into(),
            2 => format!("{}e{}", rng.below(9), rng.below(20)),
            _ => format!("{}.{}", rng.below(100), rng.below(100)),
        };
        out.push_str(&format!("{id},{name},{when},{score}"));
        out.push_str(if rng.chance(4) { "\r\n" } else { "\n" });
    }
    out
}

/// Builds a `Q` of `n` joins over `db`, deliberately mixing valid
/// joins with out-of-range relation ids, out-of-range attribute ids,
/// empty attribute lists and mismatched side arities. Uses struct
/// literals so no checked constructor can reject them early.
pub fn hostile_q(seed: u64, db: &Database, n: usize) -> Vec<EquiJoin> {
    let mut rng = Splitmix(seed ^ 0xDEAD_BEEF);
    let rels = db.schema.len() as u64;
    let side = |rng: &mut Splitmix| -> IndSide {
        let rel = RelId(rng.below(rels + 2) as u32); // may be out of range
        let arity = db
            .schema
            .iter()
            .nth(rel.index())
            .map(|(_, r)| r.arity())
            .unwrap_or(3) as u64;
        let k = rng.below(3); // 0..=2 attrs; 0 = empty list
        let attrs = (0..k)
            .map(|_| AttrId(rng.below(arity + 2) as u16)) // may be out of range
            .collect();
        IndSide { rel, attrs }
    };
    (0..n)
        .map(|_| EquiJoin {
            left: side(&mut rng),
            right: side(&mut rng),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injectors_are_deterministic() {
        assert_eq!(corrupt_csv(42), corrupt_csv(42));
        assert_eq!(truncate_sql(7, BASE_SCRIPT), truncate_sql(7, BASE_SCRIPT));
        let db = Database::new();
        assert_eq!(hostile_q(9, &db, 4), hostile_q(9, &db, 4));
    }

    #[test]
    fn truncation_covers_the_full_range() {
        // Some seed yields the empty script, some seed the full one.
        let lens: Vec<usize> = (0..200)
            .map(|s| truncate_sql(s, BASE_SCRIPT).len())
            .collect();
        assert!(lens.contains(&0));
        assert!(lens.iter().any(|&l| l >= BASE_SCRIPT.len()));
    }
}
