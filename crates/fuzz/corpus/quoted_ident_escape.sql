-- A legacy column name with an embedded double quote: `wei"rd`.
-- SQL-92 escapes it by doubling inside a delimited identifier; the
-- generated counting statements must render it the same way or they
-- fail to parse and the probe silently falls back to the reference.
CREATE TABLE Legacy ("wei""rd" INT, "all""quotes""" INT, plain INT);
INSERT INTO Legacy VALUES (1, 1, 10), (1, 2, 20), (2, 2, 10), (NULL, NULL, 30);
