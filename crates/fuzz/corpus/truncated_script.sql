CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30), zip INT);
CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30), amount INT);
INSERT INTO Customer VALUES (1, 'ann',