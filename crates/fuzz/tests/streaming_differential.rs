//! Differential properties of the streaming CSV→spill encoder.
//!
//! The streamed ingest path (`import_csv_spilled`) must be
//! *indistinguishable* from materialize-then-spill:
//!
//! * on well-formed hostile input (NULL-heavy, BOM, quoting-hostile,
//!   mixed line endings) the slim dictionaries match and the spill
//!   files are byte-identical to `PageFile::spill` over the
//!   materialized encode;
//! * on corrupted input both paths agree on accept/reject, and a
//!   rejected streamed ingest leaves the target relation untouched;
//! * a second ingest through the same `--spill-dir` is served from
//!   the committed cache entry with identical bytes, and a content
//!   change invalidates it.

// Test-support helpers outside #[test] fns; panicking on fixture
// failure is test behaviour.
#![allow(clippy::expect_used)]

use dbre_fuzz::{corrupt_csv, streaming_csv};
use dbre_relational::attr::AttrId;
use dbre_relational::csv::{import_csv, import_csv_spilled};
use dbre_relational::database::Database;
use dbre_relational::encode::ColumnDict;
use dbre_relational::pages::PageFile;
use dbre_relational::schema::{RelId, Relation};
use dbre_relational::value::Domain;
use proptest::prelude::*;
use std::path::PathBuf;

fn scratch_db() -> (Database, RelId) {
    let mut db = Database::new();
    let rel = db
        .add_relation(Relation::of(
            "T",
            &[
                ("id", Domain::Int),
                ("name", Domain::Text),
                ("when", Domain::Date),
                ("score", Domain::Float),
            ],
        ))
        .expect("fresh schema");
    (db, rel)
}

fn tmp_file(tag: &str, seed: u64, text: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("dbre-fuzz-{tag}-{}-{seed}.csv", std::process::id()));
    std::fs::write(&p, text).expect("differential temp file writes");
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming ingest produces byte-identical spill files and equal
    /// slim dictionaries for every generated hostile-but-valid input.
    #[test]
    fn streaming_ingest_is_byte_identical(seed in any::<u64>()) {
        let text = streaming_csv(seed);
        let path = tmp_file("stream", seed, &text);

        let (mut mat, rel) = scratch_db();
        import_csv(&mut mat, rel, &text).unwrap();

        let (mut sdb, srel) = scratch_db();
        let table = import_csv_spilled(&mut sdb, srel, &path, None).unwrap();
        prop_assert_eq!(table.rows(), mat.table(rel).len());

        for i in 0..4u16 {
            let direct = ColumnDict::build(mat.table(rel).column(AttrId(i)));
            let col = &table.columns()[i as usize];
            prop_assert_eq!(col.dict().as_ref(), &direct.slim(), "column {} dict", i);
            let reference = PageFile::spill(direct.codes()).unwrap();
            let expect = std::fs::read(reference.path()).unwrap();
            let got = std::fs::read(col.file().path()).unwrap();
            prop_assert_eq!(got, expect, "column {} spill bytes", i);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Corrupted input: both ingest paths accept or both reject, and
    /// agreement on accept extends to the encoded dictionaries. A
    /// rejected streamed ingest must leave the relation empty and
    /// materialized (no half-adopted streamed extension).
    #[test]
    fn corrupt_inputs_agree(seed in any::<u64>()) {
        let text = corrupt_csv(seed);
        let path = tmp_file("corrupt", seed, &text);

        let (mut mat, rel) = scratch_db();
        let m = import_csv(&mut mat, rel, &text);
        let (mut sdb, srel) = scratch_db();
        let s = import_csv_spilled(&mut sdb, srel, &path, None);

        match (&m, &s) {
            (Ok(_), Ok(table)) => {
                prop_assert_eq!(table.rows(), mat.table(rel).len());
                for i in 0..4u16 {
                    let direct = ColumnDict::build(mat.table(rel).column(AttrId(i)));
                    let col = &table.columns()[i as usize];
                    prop_assert_eq!(col.dict().as_ref(), &direct.slim(), "column {} dict", i);
                }
            }
            (Err(_), Err(_)) => {
                prop_assert!(sdb.table(srel).is_materialized());
                prop_assert_eq!(sdb.table(srel).len(), 0);
            }
            _ => prop_assert!(
                false,
                "ingest paths disagree for seed {}: materialized ok={}, streamed ok={}",
                seed,
                m.is_ok(),
                s.is_ok()
            ),
        }
        std::fs::remove_file(&path).ok();
    }

    /// Spill-cache round trip: cold ingest commits an entry, a rerun
    /// on unchanged input loads it (`from_cache`, identical bytes),
    /// and changing the source content invalidates it.
    #[test]
    fn warm_cache_round_trip(seed in any::<u64>()) {
        let text = streaming_csv(seed);
        let path = tmp_file("cache", seed, &text);
        let dir = std::env::temp_dir().join(format!(
            "dbre-fuzz-spilldir-{}-{seed}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();

        let (mut db1, r1) = scratch_db();
        let cold = import_csv_spilled(&mut db1, r1, &path, Some(&dir)).unwrap();
        prop_assert!(!cold.from_cache());

        let (mut db2, r2) = scratch_db();
        let warm = import_csv_spilled(&mut db2, r2, &path, Some(&dir)).unwrap();
        prop_assert!(warm.from_cache());
        prop_assert_eq!(warm.rows(), cold.rows());
        for (c, w) in cold.columns().iter().zip(warm.columns()) {
            prop_assert_eq!(c.dict(), w.dict());
            prop_assert_eq!(
                std::fs::read(c.file().path()).unwrap(),
                std::fs::read(w.file().path()).unwrap()
            );
        }

        // Content change → different key → a fresh encode.
        std::fs::write(&path, format!("{text}99,zz,,\n")).unwrap();
        let (mut db3, r3) = scratch_db();
        let third = import_csv_spilled(&mut db3, r3, &path, Some(&dir)).unwrap();
        prop_assert!(!third.from_cache());
        prop_assert_eq!(third.rows(), cold.rows() + 1);

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&path).ok();
    }
}
