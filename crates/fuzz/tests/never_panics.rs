//! The panic-freedom property: whatever we throw at the pipeline —
//! corrupted CSV, truncated SQL, out-of-range `Q`, an oracle that
//! aborts mid-session or answers inconsistently — no panic may escape.
//! Every entry point either returns `Ok` with a coherent audit trail
//! or a *typed* error; a failed stage must appear in
//! `PipelineResult::stage_errors` with a `DbreError`, mirrored as a
//! warning, and must not prevent the remaining stages from running.

use dbre_core::{
    run_with_programs, run_with_q, ChaosOracle, OracleAbort, PipelineOptions, PipelineResult,
};
use dbre_extract::ProgramSource;
use dbre_fuzz::{corrupt_csv, hostile_q, truncate_sql, BASE_PROGRAM, BASE_SCRIPT};
use dbre_relational::csv::import_csv;
use dbre_relational::database::Database;
use dbre_relational::schema::Relation;
use dbre_relational::value::Domain;
use dbre_relational::DbreError;
use dbre_sql::Catalog;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// The degradation contract deliberately routes oracle aborts through
/// an `OracleAbort` unwind, which the default panic hook would print
/// for every injected abort. Silence exactly that payload; real
/// panics keep the default report.
fn quiet_expected_unwinds() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<OracleAbort>().is_none() {
                default(info);
            }
        }));
    });
}

/// Checks the coherence half of the contract.
fn assert_coherent(result: &PipelineResult) {
    // Every stage ran (possibly degraded): timings are recorded in
    // order for the five fixed stages.
    let timed: Vec<&str> = result.stats.stage_timings.iter().map(|(s, _)| *s).collect();
    for stage in [
        "ind-discovery",
        "lhs-discovery",
        "rhs-discovery",
        "restruct",
        "translate",
    ] {
        assert!(timed.contains(&stage), "missing timing for {stage}");
    }
    // Every stage error is typed and mirrored as a warning.
    for se in &result.stage_errors {
        assert!(timed.contains(&se.stage), "unknown stage {}", se.stage);
        let rendered = se.error.to_string();
        assert!(!rendered.is_empty());
        assert!(
            result
                .warnings
                .iter()
                .any(|w| w.contains(se.stage) && w.contains("degraded")),
            "stage error {se} not mirrored in warnings"
        );
        // The taxonomy is closed: render the variant to prove it is
        // one of ours (a stray panic would be DbreError::Panic).
        match &se.error {
            DbreError::Relational(_)
            | DbreError::Csv(_)
            | DbreError::Sql(_)
            | DbreError::Extract(_)
            | DbreError::Page(_)
            | DbreError::OracleAbort(_) => {}
            DbreError::Panic { stage, .. } => {
                panic!("stage `{stage}` leaked a raw panic: {rendered}")
            }
        }
    }
    assert_eq!(result.is_complete(), result.stage_errors.is_empty());
}

/// One end-to-end hostile run; returns the result for extra checks.
fn hostile_run(seed: u64, abort_probability: f64) -> PipelineResult {
    // Build a catalog from a (possibly truncated) script; a parse
    // error is a typed error and the fuzz case degenerates to an
    // empty database, which the pipeline must also survive.
    let mut cat = Catalog::new();
    let _ = cat.load_script(&truncate_sql(seed, BASE_SCRIPT));
    let mut db = cat.into_database();

    // Import corrupted CSV into a scratch relation when possible;
    // only typed CsvErrors may come back.
    let scratch = Relation::of(
        "Scratch",
        &[
            ("id", Domain::Int),
            ("name", Domain::Text),
            ("when", Domain::Date),
            ("score", Domain::Float),
        ],
    );
    if let Ok(rel) = db.add_relation(scratch) {
        if let Err(e) = import_csv(&mut db, rel, &corrupt_csv(seed)) {
            // Exercise the conversion into the unified taxonomy.
            let unified: DbreError = e.into();
            assert!(!unified.to_string().is_empty());
        }
    }

    let q = hostile_q(seed, &db, (seed % 5) as usize + 1);
    let mut oracle = ChaosOracle::with_abort(seed, abort_probability);
    run_with_q(db, &q, &mut oracle, &PipelineOptions::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline property: 256 hostile cases, zero escaped panics.
    #[test]
    fn pipeline_never_panics(seed in any::<u64>()) {
        quiet_expected_unwinds();
        let p = (seed % 101) as f64 / 100.0; // abort probability 0..=1
        let outcome = catch_unwind(AssertUnwindSafe(|| hostile_run(seed, p)));
        let result = match outcome {
            Ok(r) => r,
            Err(_) => panic!("pipeline panicked for seed {seed}"),
        };
        assert_coherent(&result);
    }

    /// Program-driven entry point under the same chaos.
    #[test]
    fn program_pipeline_never_panics(seed in any::<u64>()) {
        quiet_expected_unwinds();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut cat = Catalog::new();
            let _ = cat.load_script(&truncate_sql(seed, BASE_SCRIPT));
            let db = cat.into_database();
            let programs = vec![
                ProgramSource::sql("report", BASE_PROGRAM),
                ProgramSource::sql("mangled", truncate_sql(seed ^ 1, BASE_PROGRAM)),
            ];
            let mut oracle = ChaosOracle::with_abort(seed, 0.25);
            run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default())
        }));
        let result = match outcome {
            Ok(r) => r,
            Err(_) => panic!("program pipeline panicked for seed {seed}"),
        };
        assert_coherent(&result);
    }

    /// Corrupted CSV alone: typed errors only, never a panic.
    #[test]
    fn import_csv_never_panics(seed in any::<u64>()) {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut db = Database::new();
            let rel = db
                .add_relation(Relation::of(
                    "T",
                    &[
                        ("id", Domain::Int),
                        ("name", Domain::Text),
                        ("when", Domain::Date),
                        ("score", Domain::Float),
                    ],
                ))
                .map_err(DbreError::from)?;
            import_csv(&mut db, rel, &corrupt_csv(seed)).map_err(DbreError::from)?;
            Ok::<usize, DbreError>(db.table(rel).len())
        }));
        prop_assert!(outcome.is_ok(), "import_csv panicked for seed {}", seed);
    }

    /// Truncated SQL alone: the catalog loader returns typed errors.
    #[test]
    fn load_script_never_panics(seed in any::<u64>()) {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut cat = Catalog::new();
            cat.load_script(&truncate_sql(seed, BASE_SCRIPT))
                .map_err(DbreError::from)
                .map(|()| cat.into_database().schema.len())
        }));
        prop_assert!(outcome.is_ok(), "load_script panicked for seed {}", seed);
    }
}

/// An oracle that always aborts on its very first question must leave
/// a typed OracleAbort in stage_errors, with later stages degraded to
/// empty outputs rather than skipped silently.
#[test]
fn guaranteed_abort_is_reported_as_typed_stage_error() {
    quiet_expected_unwinds();
    let mut cat = Catalog::new();
    cat.load_script(BASE_SCRIPT).expect("base script parses");
    let db = cat.into_database();
    let programs = vec![ProgramSource::sql("report", BASE_PROGRAM)];
    let mut oracle = ChaosOracle::with_abort(3, 1.0);
    let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
    assert!(!result.is_complete());
    assert!(result
        .stage_errors
        .iter()
        .any(|se| matches!(se.error, DbreError::OracleAbort(_))));
    assert_coherent(&result);
}
