//! Deterministic replay of the checked-in regression corpus: inputs
//! that once provoked (or are crafted to provoke) the failure classes
//! the degradation contract covers. Unlike the seeded property tests,
//! these cases are frozen files under `corpus/`, so a regression in
//! any error path fails with a readable diff instead of a seed.

// Test-support helpers outside #[test] fns; panicking on fixture
// failure is test behaviour.
#![allow(clippy::expect_used)]

use dbre_core::{run_with_q, ChaosOracle, PipelineOptions};
use dbre_fuzz::hostile_q;
use dbre_relational::csv::{import_csv, CsvError};
use dbre_relational::database::Database;
use dbre_relational::schema::Relation;
use dbre_relational::value::Domain;
use dbre_sql::Catalog;

const DUP_HEADER: &str = include_str!("../corpus/dup_header.csv");
const BOM_RAGGED: &str = include_str!("../corpus/bom_then_ragged_row.csv");
const TRUNCATED_SCRIPT: &str = include_str!("../corpus/truncated_script.sql");
const CHAOS_SEEDS: &str = include_str!("../corpus/chaos_seeds.txt");
const QUOTED_IDENT_ESCAPE: &str = include_str!("../corpus/quoted_ident_escape.sql");
const TRUNCATED_PAGE: &[u8] = include_bytes!("../corpus/truncated_page.colpage");

fn scratch_db() -> (Database, dbre_relational::schema::RelId) {
    let mut db = Database::new();
    let rel = db
        .add_relation(Relation::of(
            "T",
            &[
                ("id", Domain::Int),
                ("name", Domain::Text),
                ("when", Domain::Date),
                ("score", Domain::Float),
            ],
        ))
        .expect("fresh schema");
    (db, rel)
}

#[test]
fn corpus_duplicate_header_is_rejected() {
    let (mut db, rel) = scratch_db();
    let err = import_csv(&mut db, rel, DUP_HEADER).expect_err("duplicate header must error");
    let CsvError::Schema(msg) = err else {
        panic!("expected schema error, got {err:?}")
    };
    assert!(msg.contains("duplicate header column `id`"), "{msg}");
}

#[test]
fn corpus_bom_is_stripped_then_ragged_row_is_located() {
    let (mut db, rel) = scratch_db();
    let err = import_csv(&mut db, rel, BOM_RAGGED).expect_err("ragged row must error");
    // The BOM itself must NOT be the failure: the error points at the
    // short row on line 3, naming the relation.
    let CsvError::Malformed { line, message } = err else {
        panic!("expected malformed error, got {err:?}")
    };
    assert_eq!(line, 3);
    assert!(message.contains("relation `T`"), "{message}");
}

#[test]
fn corpus_truncated_script_is_a_typed_sql_error() {
    let mut cat = Catalog::new();
    let err = cat
        .load_script(TRUNCATED_SCRIPT)
        .expect_err("truncated script must error");
    // Renders without panicking and is non-empty.
    assert!(!err.to_string().is_empty());
}

#[test]
fn corpus_quoted_identifier_escapes_round_trip() {
    use dbre_relational::backend::{CountBackend, ReferenceBackend};
    let mut cat = Catalog::new();
    cat.load_script(QUOTED_IDENT_ESCAPE)
        .expect("escaped-quote identifiers lex and parse");
    let db = cat.into_database();
    let (rel, ids) = db
        .resolve("Legacy", &["wei\"rd", "all\"quotes\""])
        .expect("columns resolve under their raw names");
    // The generated COUNT(DISTINCT …) must execute — a failed probe
    // would silently serve the reference answer and bump `failures`.
    let backend = dbre_sql::SqlBackend::new();
    for attrs in [&ids[..1], &ids[..]] {
        assert_eq!(
            backend.count_distinct(&db, rel, attrs),
            ReferenceBackend.count_distinct(&db, rel, attrs)
        );
    }
    assert_eq!(
        backend.failures(),
        0,
        "quoted identifiers with embedded quotes must execute as SQL"
    );
}

#[test]
fn corpus_corrupt_page_file_is_a_typed_error_never_a_panic() {
    use dbre_relational::error::DbreError;
    use dbre_relational::pages::{PageError, PageFile, HEADER_BYTES, PAGE_BYTES};

    let dir = std::env::temp_dir();
    let write = |name: &str, bytes: &[u8]| {
        let path = dir.join(format!("dbre-fuzz-{}-{name}", std::process::id()));
        std::fs::write(&path, bytes).expect("corpus temp file writes");
        path
    };

    // The corpus bytes: a well-formed header promising one 64 KiB page
    // of 100 codes, followed by 128 bytes of data. Opening must fail
    // with the typed truncation error, not read past EOF.
    let truncated = write("truncated.colpage", TRUNCATED_PAGE);
    let err = PageFile::open(&truncated).expect_err("truncated page file must not open");
    let PageError::Truncated { expected, actual } = err else {
        panic!("expected Truncated, got {err:?}")
    };
    assert_eq!(expected, (HEADER_BYTES + PAGE_BYTES) as u64);
    assert_eq!(actual, TRUNCATED_PAGE.len() as u64);
    // The paged store's errors surface through the one workspace error
    // type, so pipeline callers degrade instead of unwinding.
    let typed: DbreError = PageError::Truncated { expected, actual }.into();
    assert!(typed.to_string().contains("paged store error"), "{typed}");

    // Same bytes with a flipped magic: rejected before any field read.
    let mut bad_magic = TRUNCATED_PAGE.to_vec();
    bad_magic[0] ^= 0xFF;
    let path = write("badmagic.colpage", &bad_magic);
    assert!(matches!(
        PageFile::open(&path).expect_err("bad magic must not open"),
        PageError::BadMagic
    ));

    // Pad the corpus bytes to the promised physical length: the file
    // now opens, but its header checksum (deliberately zero — FNV-1a
    // of real data is never zero) no longer matches the page stream.
    let mut padded = TRUNCATED_PAGE.to_vec();
    padded.resize(HEADER_BYTES + PAGE_BYTES, 0);
    let path = write("badsum.colpage", &padded);
    let file = PageFile::open(&path).expect("padded file opens");
    assert!(matches!(
        file.verify_checksum()
            .expect_err("zero checksum must not verify"),
        PageError::Checksum { .. }
    ));

    for name in ["truncated.colpage", "badmagic.colpage", "badsum.colpage"] {
        let _ = std::fs::remove_file(dir.join(format!("dbre-fuzz-{}-{name}", std::process::id())));
    }
}

#[test]
fn corpus_chaos_seeds_replay_cleanly() {
    for line in CHAOS_SEEDS.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seed: u64 = line.parse().expect("corpus seeds are integers");
        let mut cat = Catalog::new();
        cat.load_script(dbre_fuzz::BASE_SCRIPT)
            .expect("base script parses");
        let db = cat.into_database();
        let q = hostile_q(seed, &db, 4);
        let mut oracle = ChaosOracle::with_abort(seed, 0.5);
        let result = run_with_q(db, &q, &mut oracle, &PipelineOptions::default());
        // Whatever the oracle did, the result must be coherent: each
        // stage error typed and mirrored as a degradation warning.
        for se in &result.stage_errors {
            assert!(
                result.warnings.iter().any(|w| w.contains(se.stage)),
                "seed {seed}: {se} not mirrored"
            );
        }
    }
}
