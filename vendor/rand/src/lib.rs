//! Offline, dependency-free stand-in for the subset of the `rand 0.9`
//! API this workspace uses (`StdRng::seed_from_u64`, `random_range`,
//! `random_bool`).
//!
//! The container building this repository has no network access, so the
//! real crates-io `rand` cannot be fetched; this vendored crate keeps
//! the same module paths and method names. The generator is
//! xoshiro256** seeded through SplitMix64 — statistically solid for
//! workload synthesis, *not* cryptographic. Streams differ from the
//! real `StdRng` (ChaCha12), which only shifts which synthetic
//! databases the seeds denote; all consumers treat the stream as
//! opaque.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (API-compatible subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range; panics on an empty range, like the
    /// real `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: IntoUniformRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample(self, lo, hi_inclusive)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to [0,1]).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 high bits -> uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — the standard generator of this shim.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Integer types `random_range` can sample.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi]` (inclusive).
    fn sample<G: Rng + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<G: Rng + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of the plain variant is irrelevant here.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32, i16);

/// Range forms accepted by [`Rng::random_range`].
pub trait IntoUniformRange<T: UniformInt> {
    /// `(low, high_inclusive)` bounds.
    fn bounds(self) -> (T, T);
}

impl<T: UniformInt + HalfOpenEnd> IntoUniformRange<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, self.end.pred())
    }
}

impl<T: UniformInt> IntoUniformRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Predecessor for converting half-open to inclusive bounds.
pub trait HalfOpenEnd {
    /// `self - 1`; only called on a value known to exceed the range
    /// start, so it never underflows.
    fn pred(self) -> Self;
}

macro_rules! impl_half_open {
    ($($t:ty),*) => {$(
        impl HalfOpenEnd for $t {
            fn pred(self) -> Self { self - 1 }
        }
    )*};
}

impl_half_open!(usize, u64, u32, u16, u8, i64, i32, i16);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
        // Degenerate singleton ranges are fine.
        assert_eq!(rng.random_range(4usize..5), 4);
        assert_eq!(rng.random_range(9u16..=9), 9);
    }

    #[test]
    fn bool_probabilities_roughly_honoured() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "got {frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
