//! Offline, dependency-free stand-in for the subset of the `proptest`
//! API this workspace uses.
//!
//! The container building this repository has no network access, so the
//! real crates-io `proptest` cannot be fetched; this vendored crate
//! keeps the same module paths, macros, and trait names so the test
//! files compile unchanged. Differences from the real engine:
//!
//! - generation is deterministic (seeded per test-function name and
//!   case index), so failures reproduce exactly across runs;
//! - there is **no shrinking** — a failing case reports its generated
//!   arguments instead of a minimized counterexample;
//! - regex strategies support the subset actually used by the tests:
//!   literals, `[...]` classes (with ranges), `(a|b|...)` groups,
//!   `\PC` (any non-control character), `.`, and `{m}`/`{m,n}`/`*`/
//!   `+`/`?` repetition.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config that runs `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The case did not meet a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (assumption not met) with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Deterministic per-case generator (SplitMix64 over an FNV-1a
    /// hash of the test path and the case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` of test `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
            TestRng {
                state: h ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniformly random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform `usize` in `[lo, hi]` (inclusive).
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u64 + 1;
            lo + self.below(span) as usize
        }

        /// Uniform `f64` in `[0, 1)` from the 53 high bits.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest there is no value-tree/shrinking
    /// machinery: a strategy is just a deterministic function of the
    /// per-case RNG. Values must be `Debug` so failing cases can be
    /// reported (the real crate requires the same bound).
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `source` mapped through `f` (see [`Strategy::prop_map`]).
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: std::fmt::Debug> OneOf<T> {
        /// A strategy choosing uniformly among `options`.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T: std::fmt::Debug> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (u128::from(rng.next_u64()) * span) >> 64;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (u128::from(rng.next_u64()) * span) >> 64;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.f64_unit() as $t;
                    let v = self.start + u * (self.end - self.start);
                    // Floating rounding can land exactly on `end`.
                    if v >= self.end { self.start } else { v }
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.f64_unit() as $t) * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f64, f32);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let node = crate::pattern::parse(self);
            let mut out = String::new();
            crate::pattern::generate(&node, rng, &mut out);
            out
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy (`any::<T>()`).
    pub trait ArbitraryValue: Sized + std::fmt::Debug {
        /// Samples an arbitrary value, biased toward edge cases.
        fn sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn sample(rng: &mut TestRng) -> $t {
                    // Mirror the real proptest's edge-case bias: extremes
                    // and small values show up often, the rest is uniform
                    // over the full bit-width.
                    match rng.below(8) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        4 => (0 as $t).wrapping_sub(1),
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(i64, i32, i16, i8, u64, u32, u16, u8, usize);

    impl ArbitraryValue for bool {
        fn sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn sample(rng: &mut TestRng) -> f64 {
            match rng.below(8) {
                0 => 0.0,
                1 => -0.0,
                2 => 1.0,
                3 => -1.0,
                _ => {
                    let m = rng.f64_unit() * 2.0 - 1.0;
                    let e = rng.below(61) as i32 - 30;
                    m * (2.0f64).powi(e)
                }
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng)
        }
    }

    /// A strategy for arbitrary values of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Tiny regex-subset generator backing `&'static str` strategies.
pub(crate) mod pattern {
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    pub enum Node {
        Seq(Vec<Node>),
        Alt(Vec<Node>),
        Rep(Box<Node>, usize, usize),
        Class(Vec<(char, char)>),
        Lit(char),
        AnyPrintable,
    }

    /// Parses the supported regex subset; panics on anything else so an
    /// unsupported pattern fails loudly at test time rather than
    /// silently generating the wrong language.
    pub fn parse(pattern: &str) -> Node {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let node = p.alt();
        assert!(
            p.pos == p.chars.len(),
            "unsupported regex pattern {pattern:?}: trailing input at {}",
            p.pos
        );
        node
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> char {
            let c = self.chars[self.pos];
            self.pos += 1;
            c
        }

        fn alt(&mut self) -> Node {
            let mut branches = vec![self.seq()];
            while self.peek() == Some('|') {
                self.bump();
                branches.push(self.seq());
            }
            if branches.len() == 1 {
                branches.pop().unwrap()
            } else {
                Node::Alt(branches)
            }
        }

        fn seq(&mut self) -> Node {
            let mut items = Vec::new();
            while let Some(c) = self.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                items.push(self.repeated());
            }
            if items.len() == 1 {
                items.pop().unwrap()
            } else {
                Node::Seq(items)
            }
        }

        fn repeated(&mut self) -> Node {
            let atom = self.atom();
            match self.peek() {
                Some('{') => {
                    self.bump();
                    let min = self.number();
                    let max = if self.peek() == Some(',') {
                        self.bump();
                        self.number()
                    } else {
                        min
                    };
                    assert_eq!(self.bump(), '}', "malformed repetition");
                    Node::Rep(Box::new(atom), min, max)
                }
                // Unbounded operators get a small practical cap; the
                // tests only assert totality, not length distribution.
                Some('*') => {
                    self.bump();
                    Node::Rep(Box::new(atom), 0, 8)
                }
                Some('+') => {
                    self.bump();
                    Node::Rep(Box::new(atom), 1, 8)
                }
                Some('?') => {
                    self.bump();
                    Node::Rep(Box::new(atom), 0, 1)
                }
                _ => atom,
            }
        }

        fn number(&mut self) -> usize {
            let mut n = 0usize;
            let mut any = false;
            while let Some(c) = self.peek() {
                if let Some(d) = c.to_digit(10) {
                    self.bump();
                    n = n * 10 + d as usize;
                    any = true;
                } else {
                    break;
                }
            }
            assert!(any, "expected number in repetition");
            n
        }

        fn atom(&mut self) -> Node {
            match self.bump() {
                '(' => {
                    let inner = self.alt();
                    assert_eq!(self.bump(), ')', "unbalanced group");
                    inner
                }
                '[' => self.class(),
                '\\' => match self.bump() {
                    // \PC / \pC: anything outside Unicode category C
                    // ("Other") — i.e. any non-control printable char.
                    'P' | 'p' => {
                        self.bump();
                        Node::AnyPrintable
                    }
                    'd' => Node::Class(vec![('0', '9')]),
                    'n' => Node::Lit('\n'),
                    't' => Node::Lit('\t'),
                    c => Node::Lit(c),
                },
                '.' => Node::AnyPrintable,
                c => Node::Lit(c),
            }
        }

        fn class(&mut self) -> Node {
            assert!(
                self.peek() != Some('^'),
                "negated classes are not supported by the vendored proptest"
            );
            let mut ranges = Vec::new();
            loop {
                let c = match self.bump() {
                    ']' => break,
                    '\\' => self.bump(),
                    c => c,
                };
                if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                    self.bump();
                    let hi = self.bump();
                    assert!(c <= hi, "inverted class range");
                    ranges.push((c, hi));
                } else {
                    ranges.push((c, c));
                }
            }
            assert!(!ranges.is_empty(), "empty character class");
            Node::Class(ranges)
        }
    }

    /// A few multi-byte characters so `\PC` exercises non-ASCII paths.
    const UNICODE_SAMPLES: &[char] = &['é', 'ß', 'Ж', 'λ', '中', '日', 'Ω', 'ñ', 'ü', '🙂'];

    pub fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Seq(items) => {
                for item in items {
                    generate(item, rng, out);
                }
            }
            Node::Alt(branches) => {
                let i = rng.below(branches.len() as u64) as usize;
                generate(&branches[i], rng, out);
            }
            Node::Rep(inner, min, max) => {
                let n = rng.usize_in(*min, *max);
                for _ in 0..n {
                    generate(inner, rng, out);
                }
            }
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = u64::from(*hi as u32 - *lo as u32 + 1);
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                        return;
                    }
                    pick -= span;
                }
                unreachable!("class pick out of range");
            }
            Node::AnyPrintable => {
                if rng.below(10) == 0 {
                    let i = rng.below(UNICODE_SAMPLES.len() as u64) as usize;
                    out.push(UNICODE_SAMPLES[i]);
                } else {
                    out.push(char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap());
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors `proptest::prelude::prop` (module shorthand).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each body runs once per generated case; the
/// whole macro form (optional `#![proptest_config(..)]`, `arg in
/// strategy` parameters, `prop_assert*` macros) matches the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __case_name = concat!(module_path!(), "::", stringify!($name));
                let mut __executed: u32 = 0;
                let mut __attempt: u32 = 0;
                while __executed < __config.cases {
                    if __attempt > __config.cases.saturating_mul(10) + 100 {
                        panic!(
                            "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                            __case_name, __executed, __config.cases
                        );
                    }
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__case_name, __attempt);
                    __attempt += 1;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __args_dbg = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg,)+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {
                            __executed += 1;
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest '{}' failed at case #{}: {}\n  args: {}",
                                __case_name,
                                __attempt - 1,
                                __msg,
                                __args_dbg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, recording a test-case
/// failure (not an immediate panic) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// `prop_assert!` for equality, reporting both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// `prop_assert!` for inequality, reporting the operands on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                ),
            ));
        }
    }};
}

/// Rejects the current case (it is regenerated, not counted as a run)
/// when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        let s = prop::collection::vec(0u16..12, 0..6);
        for case in 0..200 {
            let mut rng_case = TestRng::for_case("bounds", case);
            let v = s.generate(&mut rng_case);
            assert!(v.len() < 6);
            assert!(v.iter().all(|&x| x < 12));
        }
        let f = (-2.0f64..2.0).generate(&mut rng);
        assert!((-2.0..2.0).contains(&f));
        let g = (0.0f64..=1.0).generate(&mut rng);
        assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec((0i64..100, "\\PC{0,20}"), 0..10);
        let a = s.generate(&mut TestRng::for_case("det", 7));
        let b = s.generate(&mut TestRng::for_case("det", 7));
        assert_eq!(a, b);
    }

    #[test]
    fn regex_subset_generates_within_language() {
        for case in 0..300 {
            let mut rng = TestRng::for_case("regex", case);
            let s = "[a-z ']{0,12}".generate(&mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ' ' || c == '\''));

            let mut rng = TestRng::for_case("regex2", case);
            let t = "(ab|[0-9]{1,3}|x){2}".generate(&mut rng);
            assert!(!t.is_empty());

            let mut rng = TestRng::for_case("regex3", case);
            let u = "\\PC{0,50}".generate(&mut rng);
            assert!(u.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for case in 0..200 {
            let mut rng = TestRng::for_case("oneof", case);
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != 9 || b != 9);
            prop_assert!(a + b <= 18);
            prop_assert_eq!(a + b, b + a, "addition must commute");
            prop_assert_ne!(a + b + 1, a + b);
        }
    }
}
