//! Offline, dependency-free stand-in for the subset of the `criterion`
//! API this workspace uses (`benchmark_group`, `bench_with_input`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros).
//!
//! The container building this repository has no network access, so the
//! real crates-io `criterion` cannot be fetched. This shim measures
//! wall-clock time with `std::time::Instant` — adaptive batching so
//! each sample spans at least a couple of milliseconds, then a
//! min/mean/max text report — with none of the statistical machinery
//! (outlier analysis, regressions, plots) of the real crate. Numbers it
//! prints are honest but coarse; compare them within a run, not across
//! machines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (drop-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for API compatibility; command-line configuration is
    /// not supported by the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 50, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a fixed input, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (reporting happens per benchmark, so this is a
    /// no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// A benchmark label: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Labels a benchmark by function name and input parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Things that can label a benchmark within a group.
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, batching iterations so each sample spans at
    /// least ~2 ms of wall clock.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup + batch calibration on a single timed call.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        let iters_per_sample = if once >= target {
            1
        } else {
            (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize
        };

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(per_iter);
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{label:<60} (no samples: routine never called iter)");
        return;
    }
    let min = bencher
        .samples_ns
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = bencher.samples_ns.iter().cloned().fold(0.0f64, f64::max);
    let mean = bencher.samples_ns.iter().sum::<f64>() / bencher.samples_ns.len() as f64;
    println!(
        "{label:<60} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into one runner (drop-in for the real
/// macro; configuration closures are not supported).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u64>()
            })
        });
        group.bench_function("trivial", |b| b.iter(|| 1 + 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
